package durable

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestWriterRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.log")
	w, err := Create(path)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	want := [][]byte{[]byte("alpha"), {}, []byte("gamma gamma"), {0, 1, 2, 255}}
	for _, p := range want {
		if err := w.Append(p); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := w.Append([]byte("late")); err == nil {
		t.Fatal("append after close accepted")
	}
	got, torn, err := ReadFile(path)
	if err != nil || torn {
		t.Fatalf("read: torn=%v err=%v", torn, err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestOpenAppendResumesPastTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.log")
	w, err := Create(path)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := w.Append([]byte("first")); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Simulate a crash mid-append: a dangling half record at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.Write([]byte{9, 0, 0, 0, 'x', 'y'}); err != nil {
		t.Fatalf("write torn tail: %v", err)
	}
	f.Close()
	if _, torn, err := ReadFile(path); err != nil || !torn {
		t.Fatalf("pre-append read: torn=%v err=%v, want torn", torn, err)
	}
	w, err = OpenAppend(path)
	if err != nil {
		t.Fatalf("open append: %v", err)
	}
	if err := w.Append([]byte("second")); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	got, torn, err := ReadFile(path)
	if err != nil || torn {
		t.Fatalf("read: torn=%v err=%v", torn, err)
	}
	if len(got) != 2 || string(got[0]) != "first" || string(got[1]) != "second" {
		t.Fatalf("records = %q", got)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")
	n, err := WriteFileAtomic(path, [][]byte{[]byte("hdr"), []byte("body")})
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	info, err := os.Stat(path)
	if err != nil || info.Size() != n {
		t.Fatalf("stat: size=%v n=%d err=%v", info, n, err)
	}
	got, torn, err := ReadFile(path)
	if err != nil || torn || len(got) != 2 {
		t.Fatalf("read: %d records torn=%v err=%v", len(got), torn, err)
	}
	// Overwrite in place; no temp files left behind.
	if _, err := WriteFileAtomic(path, [][]byte{[]byte("v2")}); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	if len(entries) != 1 || entries[0].Name() != "snap" {
		t.Fatalf("leftover files: %v", entries)
	}
	got, _, _ = ReadFile(path)
	if len(got) != 1 || string(got[0]) != "v2" {
		t.Fatalf("rewrite records = %q", got)
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	for _, data := range [][]byte{nil, []byte("short"), []byte("WRONGMG\n"), bytes.Repeat([]byte{0}, 64)} {
		if _, _, err := DecodeRecords(data); err != ErrBadMagic {
			t.Fatalf("data %q: err = %v, want ErrBadMagic", data, err)
		}
	}
}

func TestDecodeRejectsAbsurdLength(t *testing.T) {
	data := append([]byte{}, fileMagic...)
	data = append(data, 0xFF, 0xFF, 0xFF, 0xFF) // 4 GiB record claim
	payloads, torn, err := DecodeRecords(data)
	if err != nil || !torn || len(payloads) != 0 {
		t.Fatalf("payloads=%d torn=%v err=%v", len(payloads), torn, err)
	}
}

// TestTornAtEveryByte is the deterministic core of FuzzWALTornRecord: any
// truncation of a valid file decodes to a prefix of the original records
// with the torn flag set iff bytes were dropped mid-record.
func TestTornAtEveryByte(t *testing.T) {
	records := [][]byte{[]byte("one"), []byte("two two"), {}, []byte("four")}
	full := EncodeFile(records)
	for cut := MagicLen; cut <= len(full); cut++ {
		payloads, torn, err := DecodeRecords(full[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		for i, p := range payloads {
			if !bytes.Equal(p, records[i]) {
				t.Fatalf("cut %d: record %d = %q, want %q", cut, i, p, records[i])
			}
		}
		if cut == len(full) {
			if torn || len(payloads) != len(records) {
				t.Fatalf("full decode: %d records torn=%v", len(payloads), torn)
			}
		} else if !torn && len(payloads) == len(records) {
			t.Fatalf("cut %d: truncated file decoded as whole", cut)
		}
	}
}

// TestCorruptAtEveryByte flips one byte at each offset; decode must never
// panic, and a flip inside a record's frame must drop that record and its
// successors (checksums catch payload and length damage alike).
func TestCorruptAtEveryByte(t *testing.T) {
	records := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	full := EncodeFile(records)
	for off := MagicLen; off < len(full); off++ {
		mut := append([]byte{}, full...)
		mut[off] ^= 0x40
		payloads, _, err := DecodeRecords(mut)
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		// Whatever survived must be a clean prefix or a corrupted record's
		// coincidental revalidation is impossible with CRC32 over these
		// sizes; assert prefix-ness structurally.
		for i, p := range payloads {
			if i < len(records) && bytes.Equal(p, records[i]) {
				continue
			}
			// A flipped length byte can resync the stream only if the CRC
			// still matches, which cannot happen for a single bit flip.
			t.Fatalf("offset %d: record %d = %q not a clean prefix", off, i, p)
		}
	}
}

// FuzzWALTornRecord mirrors FuzzPipelinedTornStream for durable files: feed
// arbitrary bytes (seeded with valid files and their truncations) through
// DecodeRecords and re-encode the surviving records; decoding the re-encode
// must be clean and identical. Never panics, never fabricates records.
func FuzzWALTornRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(append([]byte{}, fileMagic...))
	valid := EncodeFile([][]byte{[]byte("fence"), []byte("epoch"), {1, 2, 3}})
	f.Add(valid)
	for _, cut := range []int{3, MagicLen, MagicLen + 1, MagicLen + 5, len(valid) - 3, len(valid) - 1} {
		if cut >= 0 && cut <= len(valid) {
			f.Add(append([]byte{}, valid[:cut]...))
		}
	}
	mut := append([]byte{}, valid...)
	mut[MagicLen+6] ^= 0xFF
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		payloads, torn, err := DecodeRecords(data)
		if err != nil {
			if err != ErrBadMagic {
				t.Fatalf("unexpected error: %v", err)
			}
			return
		}
		if !torn {
			// A clean decode must account for every byte.
			n := MagicLen
			for _, p := range payloads {
				n += frameOverhead + len(p)
			}
			if n != len(data) {
				t.Fatalf("clean decode consumed %d of %d bytes", n, len(data))
			}
		}
		reenc := EncodeFile(payloads)
		got, torn2, err2 := DecodeRecords(reenc)
		if err2 != nil || torn2 || len(got) != len(payloads) {
			t.Fatalf("re-encode decode: %d/%d records torn=%v err=%v", len(got), len(payloads), torn2, err2)
		}
		for i := range payloads {
			if !bytes.Equal(got[i], payloads[i]) {
				t.Fatalf("record %d mutated in round trip", i)
			}
		}
	})
}
