package ebr

import (
	"fmt"
	"sync"
	"testing"
)

// BenchmarkEnterExit measures the read-side primitive: two collective
// counter RMWs plus the verification load (Algorithm 1 lines 9–17).
func BenchmarkEnterExit(b *testing.B) {
	d := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := d.Enter()
		g.Exit()
	}
}

// BenchmarkAblationVerifyCheck isolates the verification re-check: the
// unverified variant below increments and trusts the epoch (which would be
// unsafe — Algorithm 1's retry exists precisely because the epoch can move
// between load and increment). The delta is the cost of the safety check.
func BenchmarkAblationVerifyCheck(b *testing.B) {
	b.Run("verified", func(b *testing.B) {
		d := New()
		for i := 0; i < b.N; i++ {
			g := d.Enter()
			g.Exit()
		}
	})
	b.Run("unverified-unsafe", func(b *testing.B) {
		d := New()
		for i := 0; i < b.N; i++ {
			epoch := d.globalEpoch.Load()
			idx := epoch & 1
			d.readers[idx][0].Inc()
			// no verification load, no retry loop
			d.readers[idx][0].Dec()
		}
	})
}

// BenchmarkEnterExitContended measures the collective-counter contention
// that dominates the paper's EBR numbers at 44 tasks per locale, flat
// (every reader on one stripe, the paper's layout) against striped (each
// reader on its own slot).
func BenchmarkEnterExitContended(b *testing.B) {
	for _, layout := range []struct {
		name string
		mk   func() *Domain
		slot func(r int) int
	}{
		{"flat", NewFlat, func(int) int { return 0 }},
		{"striped", New, func(r int) int { return r }},
	} {
		for _, readers := range []int{2, 8} {
			readers := readers
			layout := layout
			b.Run(fmt.Sprintf("%s/%dreaders", layout.name, readers), func(b *testing.B) {
				d := layout.mk()
				var wg sync.WaitGroup
				per := b.N / readers
				b.ResetTimer()
				for r := 0; r < readers; r++ {
					wg.Add(1)
					go func(slot int) {
						defer wg.Done()
						for i := 0; i < per; i++ {
							g := d.EnterSlot(slot)
							g.Exit()
						}
					}(layout.slot(r))
				}
				wg.Wait()
			})
		}
	}
}

// BenchmarkPinnedTick measures the amortized read-side primitive: one
// Enter/Exit pair per budget window instead of per operation.
func BenchmarkPinnedTick(b *testing.B) {
	d := New()
	p := d.Pin(0, DefaultPinBudget)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Tick()
	}
	b.StopTimer()
	p.Unpin()
}

// BenchmarkSynchronize measures the writer-side epoch advance with no
// readers present (the wait is the uncontended fast path).
func BenchmarkSynchronize(b *testing.B) {
	d := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Synchronize()
	}
}

// BenchmarkReadSection measures the closure-based Read wrapper against the
// guard pair, to justify the guard API on the array's hot path.
func BenchmarkReadSection(b *testing.B) {
	d := New()
	var sink int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Read(func() { sink++ })
	}
	_ = sink
}
