package ebr

import (
	"sync"
	"testing"
)

// BenchmarkEnterExit measures the read-side primitive: two collective
// counter RMWs plus the verification load (Algorithm 1 lines 9–17).
func BenchmarkEnterExit(b *testing.B) {
	d := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := d.Enter()
		g.Exit()
	}
}

// BenchmarkAblationVerifyCheck isolates the verification re-check: the
// unverified variant below increments and trusts the epoch (which would be
// unsafe — Algorithm 1's retry exists precisely because the epoch can move
// between load and increment). The delta is the cost of the safety check.
func BenchmarkAblationVerifyCheck(b *testing.B) {
	b.Run("verified", func(b *testing.B) {
		d := New()
		for i := 0; i < b.N; i++ {
			g := d.Enter()
			g.Exit()
		}
	})
	b.Run("unverified-unsafe", func(b *testing.B) {
		d := New()
		for i := 0; i < b.N; i++ {
			epoch := d.globalEpoch.Load()
			idx := epoch & 1
			d.readers[idx].Inc()
			// no verification load, no retry loop
			d.readers[idx].Dec()
		}
	})
}

// BenchmarkEnterExitContended measures the collective-counter contention
// that dominates the paper's EBR numbers at 44 tasks per locale.
func BenchmarkEnterExitContended(b *testing.B) {
	for _, readers := range []int{2, 8} {
		readers := readers
		b.Run(map[int]string{2: "2readers", 8: "8readers"}[readers], func(b *testing.B) {
			d := New()
			var wg sync.WaitGroup
			per := b.N / readers
			b.ResetTimer()
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						g := d.Enter()
						g.Exit()
					}
				}()
			}
			wg.Wait()
		})
	}
}

// BenchmarkSynchronize measures the writer-side epoch advance with no
// readers present (the wait is the uncontended fast path).
func BenchmarkSynchronize(b *testing.B) {
	d := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Synchronize()
	}
}

// BenchmarkReadSection measures the closure-based Read wrapper against the
// guard pair, to justify the guard API on the array's hot path.
func BenchmarkReadSection(b *testing.B) {
	d := New()
	var sink int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Read(func() { sink++ })
	}
	_ = sink
}
