// Package ebr implements the paper's novel Epoch-Based Reclamation variant
// that requires no thread-local or task-local storage (Section III-A,
// Algorithm 1).
//
// Classic EBR keeps one epoch record per thread; a reclaimer scans them.
// Chapel (and, as the paper notes in its future-work section, Go) exposes no
// reliable TLS, so readers here announce themselves *collectively*: a Domain
// holds a monotonically increasing GlobalEpoch and a pair of atomic counters,
// EpochReaders[2], indexed by the epoch's parity. A reader
//
//  1. loads the epoch e,
//  2. increments EpochReaders[e%2],
//  3. verifies the epoch is still e (otherwise undoes the increment and
//     retries).
//
// The verification makes the increment the linearization point: after it
// succeeds, any writer that advances the epoch past e is guaranteed to wait
// on the reader's counter before reclaiming the snapshot associated with e.
// Because at most two snapshots are ever live under the cluster-wide
// WriteLock (paper Lemma 1), two counters suffice, and parity is preserved
// across integer overflow of the epoch (Lemma 2) — see overflow_test.go.
//
// The domain is decoupled from RCUArray exactly as the paper's future work
// proposes, so it can protect arbitrary data: pair it with an atomic pointer
// (see package rcu) or use Synchronize directly after unlinking.
package ebr
