package ebr

import (
	"sync/atomic"

	"rcuarray/internal/xsync"
)

// Domain is one reclamation domain: a GlobalEpoch plus the two collective
// EpochReaders counters of Algorithm 1. RCUArray instantiates one Domain per
// locale (inside each privatized copy); the domain is equally usable on its
// own.
//
// A Domain must not be copied after first use.
type Domain struct {
	// globalEpoch is the monotonically increasing epoch. Writers advance
	// it with fetch-add after publishing a new snapshot.
	globalEpoch xsync.PaddedUint64
	// readers are the two collective in-progress counters, selected by
	// epoch parity. Padded: they are the single hottest pair of words in
	// the whole system under the EBR configuration.
	readers [2]xsync.PaddedUint64
	// writerActive detects violations of the precondition that
	// Synchronize callers hold mutual exclusion (the paper's WriteLock).
	writerActive atomic.Int32
	// retries counts read-side verification failures (the loop at
	// Algorithm 1 lines 9–17). Exposed for the ablation benchmarks.
	retries xsync.PaddedUint64
	// synchronizes counts writer-side Synchronize calls.
	synchronizes xsync.PaddedUint64
}

// New returns a domain with the epoch starting at zero.
func New() *Domain { return &Domain{} }

// NewAtEpoch returns a domain whose epoch starts at e. Tests use it to start
// just below the uint64 overflow boundary and exercise Lemma 2.
func NewAtEpoch(e uint64) *Domain {
	d := &Domain{}
	d.globalEpoch.Store(e)
	return d
}

// Guard is the evidence of a successfully linearized read-side critical
// section. It records which parity counter the reader incremented so that
// Exit decrements the same one even if the epoch has advanced meanwhile.
type Guard struct {
	d     *Domain
	epoch uint64
	idx   uint64
}

// Enter begins a read-side critical section (Algorithm 1, RCU_Read lines
// 9–13): record the operation on the parity counter of the observed epoch,
// then verify the epoch did not change between the load and the increment.
// On verification failure the increment is undone and the reader retries.
//
// After Enter returns, the snapshot that was current at the returned guard's
// epoch — or any newer snapshot — may be accessed safely until Exit.
func (d *Domain) Enter() Guard {
	for {
		epoch := d.globalEpoch.Load()
		idx := epoch & 1
		d.readers[idx].Inc()
		if d.globalEpoch.Load() == epoch {
			// Linearized: any writer advancing the epoch from this
			// point on waits for our counter before reclaiming.
			return Guard{d: d, epoch: epoch, idx: idx}
		}
		// A writer moved the epoch between our load and increment; a
		// future writer waiting on the *new* parity would not see us.
		// Undo and retry (lines 17, 9).
		d.readers[idx].Dec()
		d.retries.Inc()
	}
}

// Exit ends the read-side critical section begun by Enter.
func (g Guard) Exit() {
	if g.d == nil {
		panic("ebr: Exit of zero Guard")
	}
	g.d.readers[g.idx].Dec()
}

// Epoch returns the guard's linearized epoch. Torture tests correlate it
// with snapshot identity.
func (g Guard) Epoch() uint64 { return g.epoch }

// Read runs fn inside a read-side critical section. It is the λ-application
// convenience corresponding to RCU_Read lines 14–16.
func (d *Domain) Read(fn func()) {
	g := d.Enter()
	fn()
	g.Exit()
}

// Synchronize advances the epoch and waits until every reader that recorded
// itself against the *previous* epoch's parity has exited (Algorithm 1,
// RCU_Write lines 5–7). On return, no read-side critical section that began
// before the call can still observe data unlinked before the call, so the
// caller may reclaim it (line 8).
//
// Callers must hold the same mutual exclusion that serializes writers (the
// paper's cluster-wide WriteLock): concurrent Synchronize calls would race
// on parity and are detected and rejected.
func (d *Domain) Synchronize() {
	if !d.writerActive.CompareAndSwap(0, 1) {
		panic("ebr: concurrent Synchronize (WriteLock not held?)")
	}
	defer d.writerActive.Store(0)

	d.synchronizes.Inc()
	// fetch-add: the returned previous value is the epoch e whose readers
	// may still be using the snapshot being retired.
	prev := d.globalEpoch.Add(1) - 1
	idx := prev & 1
	var b xsync.Backoff
	for d.readers[idx].Load() != 0 {
		b.Wait()
	}
}

// Epoch returns the current global epoch.
func (d *Domain) Epoch() uint64 { return d.globalEpoch.Load() }

// ActiveReaders returns the current value of the parity-idx reader counter.
// It is a diagnostic: the value is immediately stale.
func (d *Domain) ActiveReaders(idx uint64) uint64 { return d.readers[idx&1].Load() }

// Retries returns the total number of read-side verification failures.
func (d *Domain) Retries() uint64 { return d.retries.Load() }

// Synchronizes returns the total number of Synchronize calls.
func (d *Domain) Synchronizes() uint64 { return d.synchronizes.Load() }
