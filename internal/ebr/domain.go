package ebr

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"rcuarray/internal/obs"
	"rcuarray/internal/xsync"
)

// MaxStripes is the compile-time cap on reader-counter stripes per parity.
// It is a power of two so the stripe mask is a single AND. Sixteen stripes
// cover the per-locale worker counts this repository simulates (the paper's
// machines run 44 tasks, but readers hash onto stripes, so more workers than
// stripes only brings back partial sharing, never incorrectness).
const MaxStripes = 16

// DefaultStripes is the stripe count used by New when the caller does not
// size the domain explicitly.
const DefaultStripes = 8

// Domain is one reclamation domain: a GlobalEpoch plus the collective
// EpochReaders counters of Algorithm 1. RCUArray instantiates one Domain per
// locale (inside each privatized copy); the domain is equally usable on its
// own.
//
// The paper's Algorithm 1 keeps exactly two counters — EpochReaders[2],
// selected by epoch parity — which makes that pair the single hottest pair
// of words in the whole system: every read pays two atomic RMWs on them, and
// concurrent readers on one locale serialize on the two cache lines. This
// implementation departs from the paper by striping each parity's counter
// over up to MaxStripes cache lines: a reader increments the stripe selected
// by its task slot, and Synchronize sums the retired parity's stripes. The
// parity/verification protocol (and Lemma 2's overflow argument) is
// unchanged; only the representation of "the count of readers at parity p"
// is distributed.
//
// A Domain must not be copied after first use. The zero value is a valid
// flat (single-stripe) domain, matching the paper's layout exactly.
type Domain struct {
	// globalEpoch is the monotonically increasing epoch. Writers advance
	// it with fetch-add after publishing a new snapshot.
	globalEpoch xsync.PaddedUint64
	// stripeMask maps a task slot to a stripe: stripe = slot & stripeMask.
	// Zero (the zero value) degenerates to the paper's flat layout. Set
	// only at construction, read-only afterwards.
	stripeMask uint64
	// readers are the collective in-progress counters: [parity][stripe].
	// Each stripe owns its cache line, so readers on distinct slots no
	// longer contend.
	readers [2][MaxStripes]xsync.PaddedUint64
	// writerActive detects violations of the precondition that
	// Synchronize callers hold mutual exclusion (the paper's WriteLock).
	writerActive atomic.Int32
	// retries counts read-side verification failures (the loop at
	// Algorithm 1 lines 9–17). Exposed for the ablation benchmarks.
	retries xsync.PaddedUint64
	// synchronizes counts writer-side Synchronize calls.
	synchronizes xsync.PaddedUint64
	// o is the observability destination installed by Observe; nil means
	// the process-global default (see obs.go).
	o atomic.Pointer[domainObs]
	// tree, when non-nil, replaces the flat readers array with the
	// hierarchical (combining-tree) counter layout of tree.go. Set only at
	// construction; nil — including in the zero value — keeps the paper's
	// flat rendezvous as the baseline.
	tree *tree

	// Watchdog state (watchdog.go), written only while observability is on.
	// syncStart is the wall-clock nanosecond at which an in-flight
	// Synchronize advanced the epoch (0 = none in flight); syncParity is the
	// parity it is waiting out. lastEntry[parity][stripe] is the most recent
	// reader annotation on that cell — packed (slot, site) — stored with one
	// plain atomic write at Enter so the watchdog can name the culprit of a
	// stalled grace period without the read path ever taking a timestamp.
	// Tree leaves beyond MaxStripes fold onto the annotation array modulo
	// MaxStripes: the annotation is diagnostic, not part of the protocol.
	syncStart  atomic.Int64
	syncParity atomic.Uint64
	lastEntry  [2][MaxStripes]atomic.Uint64
}

// Reader entry sites, packed into the watchdog annotation so a stall report
// can say how the culprit entered its critical section.
const (
	siteEnter = 1 // Enter / EnterSlot / Read
	sitePin   = 2 // Pinned session Pin
	siteRepin = 3 // Pinned session budget repin
)

// siteName renders an entry site for stall reports.
func siteName(site uint64) string {
	switch site {
	case siteEnter:
		return "enter"
	case sitePin:
		return "pin"
	case siteRepin:
		return "repin"
	default:
		return "unknown"
	}
}

// annotate records (slot, site) on a parity/stripe cell: bit 0 marks the
// annotation valid, bits 1–2 the site, the rest the slot. One plain atomic
// store, no timestamp — cheap enough to run on every traced Enter.
func (d *Domain) annotate(idx, stripe uint64, slot int, site uint64) {
	d.lastEntry[idx][stripe&(MaxStripes-1)].Store(uint64(slot)<<3 | site<<1 | 1)
}

// New returns a domain with DefaultStripes reader stripes and the epoch
// starting at zero.
func New() *Domain { return NewStriped(DefaultStripes) }

// NewFlat returns a domain with a single reader-counter pair — the paper's
// exact Algorithm 1 layout. The A/B benchmarks use it as the baseline.
func NewFlat() *Domain { return &Domain{} }

// NewStriped returns a domain whose per-parity reader counter is striped
// over n cache lines (rounded up to a power of two, clamped to
// [1, MaxStripes]).
func NewStriped(n int) *Domain {
	return &Domain{stripeMask: uint64(xsync.RoundPow2(n, MaxStripes) - 1)}
}

// NewAtEpoch returns a default-striped domain whose epoch starts at e. Tests
// use it to start just below the uint64 overflow boundary and exercise
// Lemma 2.
func NewAtEpoch(e uint64) *Domain {
	d := NewStriped(DefaultStripes)
	d.globalEpoch.Store(e)
	return d
}

// Stripes returns the number of reader counter cells per parity: flat
// stripes, or tree leaves for hierarchical domains.
func (d *Domain) Stripes() int {
	if t := d.tree; t != nil {
		return t.leaves
	}
	return int(d.stripeMask) + 1
}

// Guard is the evidence of a successfully linearized read-side critical
// section. It records the exact counter cell the reader incremented — a flat
// stripe or a tree leaf — so that Exit decrements the same one even if the
// epoch has advanced meanwhile.
type Guard struct {
	d      *Domain
	cell   *xsync.PaddedUint64
	epoch  uint64
	idx    uint64
	stripe uint64
	exited bool
}

// Enter begins a read-side critical section on stripe 0. Callers that have a
// task slot should prefer EnterSlot, which spreads concurrent readers over
// the striped counters.
func (d *Domain) Enter() Guard { return d.EnterSlot(0) }

// EnterSlot begins a read-side critical section (Algorithm 1, RCU_Read lines
// 9–13): record the operation on the parity counter of the observed epoch —
// on the stripe selected by slot — then verify the epoch did not change
// between the load and the increment. On verification failure the increment
// is undone and the reader retries.
//
// After EnterSlot returns, the snapshot that was current at the returned
// guard's epoch — or any newer snapshot — may be accessed safely until Exit.
func (d *Domain) EnterSlot(slot int) Guard {
	if t := d.tree; t != nil {
		g := d.enterTree(t, slot)
		if obs.On() {
			d.annotate(g.idx, g.stripe, slot, siteEnter)
		}
		return g
	}
	stripe := uint64(slot) & d.stripeMask
	for {
		epoch := d.globalEpoch.Load()
		idx := epoch & 1
		cell := &d.readers[idx][stripe]
		cell.Inc()
		if d.globalEpoch.Load() == epoch {
			// Linearized: any writer advancing the epoch from this
			// point on sums our stripe before reclaiming.
			if obs.On() {
				d.annotate(idx, stripe, slot, siteEnter)
			}
			return Guard{d: d, cell: cell, epoch: epoch, idx: idx, stripe: stripe}
		}
		// A writer moved the epoch between our load and increment; a
		// future writer waiting on the *new* parity would not see us.
		// Undo and retry (lines 17, 9).
		cell.Dec()
		d.retries.Inc()
		if obs.On() {
			d.obsHandles().retries.Inc()
		}
	}
}

// Exit ends the read-side critical section begun by Enter/EnterSlot. Exiting
// the same guard twice panics; so does any Exit that would drive the stripe
// counter negative (the signature of exiting a stale copy of an
// already-exited guard, which would otherwise silently wedge Synchronize
// forever — or worse, release it early past a live reader).
func (g *Guard) Exit() {
	if g.d == nil {
		panic("ebr: Exit of zero Guard")
	}
	if g.exited {
		panic("ebr: double Exit of Guard")
	}
	g.exited = true
	if after := g.cell.Dec(); after > math.MaxUint64/2 {
		panic(fmt.Sprintf("ebr: unbalanced Exit underflowed reader counter (parity %d stripe %d)", g.idx, g.stripe))
	}
}

// Epoch returns the guard's linearized epoch. Torture tests correlate it
// with snapshot identity.
func (g *Guard) Epoch() uint64 { return g.epoch }

// Read runs fn inside a read-side critical section on stripe 0. It is the
// λ-application convenience corresponding to RCU_Read lines 14–16. The exit
// is deferred: if fn panics, the reader counter is still released, so a
// poisoned dereference inside fn cannot wedge every later Synchronize.
func (d *Domain) Read(fn func()) { d.ReadSlot(0, fn) }

// ReadSlot runs fn inside a read-side critical section on the stripe
// selected by slot, releasing the guard even if fn panics.
func (d *Domain) ReadSlot(slot int, fn func()) {
	g := d.EnterSlot(slot)
	defer g.Exit()
	fn()
}

// Synchronize advances the epoch and waits until every reader that recorded
// itself against the *previous* epoch's parity has exited (Algorithm 1,
// RCU_Write lines 5–7). On return, no read-side critical section that began
// before the call can still observe data unlinked before the call, so the
// caller may reclaim it (line 8).
//
// With striping, "the previous parity's counter is zero" becomes "one full
// pass over the previous parity's stripes sums to zero". That pass is safe:
// a linearized old-parity reader incremented its stripe before our epoch
// advance (its verification read the pre-advance epoch), so every later load
// of that stripe observes the increment until the reader exits; readers
// arriving after the advance target the new parity, and the only transient
// old-parity increments are verification failures, which make a pass read a
// stale nonzero — never a false zero — and cost one more pass.
//
// Callers must hold the same mutual exclusion that serializes writers (the
// paper's cluster-wide WriteLock): concurrent Synchronize calls would race
// on parity and are detected and rejected.
func (d *Domain) Synchronize() {
	if !d.writerActive.CompareAndSwap(0, 1) {
		panic("ebr: concurrent Synchronize (WriteLock not held?)")
	}
	defer d.writerActive.Store(0)

	d.synchronizes.Inc()
	// Synchronize is the writer-side slow path, so it may take timestamps
	// when observability is on: the grace period — epoch advance to last
	// old-parity reader exit — is the quantity the reclamation literature
	// says to watch (defer-backlog blowup starts here).
	var o *domainObs
	var t0 time.Time
	if obs.On() {
		o = d.obsHandles()
		t0 = time.Now()
	}
	// fetch-add: the returned previous value is the epoch e whose readers
	// may still be using the snapshot being retired.
	prev := d.globalEpoch.Add(1) - 1
	idx := prev & 1
	if o != nil {
		// Publish the in-flight grace period for the stall watchdog: parity
		// first, so a sampler that sees syncStart non-zero reads the parity
		// this Synchronize is actually waiting on.
		d.syncParity.Store(idx)
		d.syncStart.Store(t0.UnixNano())
	}
	var stalls uint64
	if t := d.tree; t != nil {
		// Hierarchical rendezvous: fold the combining tree (tree.go)
		// instead of re-summing every stripe on every pass.
		stalls = t.foldTree(idx)
	} else {
		var b xsync.Backoff
		for d.sumStripes(idx) != 0 {
			b.Wait()
			stalls++
		}
	}
	if o != nil {
		d.syncStart.Store(0)
		o.grace.Observe(time.Since(t0).Nanoseconds())
		o.stalls.Add(stalls)
	}
}

// sumStripes returns one pass over parity idx's stripes (or, for tree
// domains, leaves — diagnostics only; Synchronize uses foldTree).
func (d *Domain) sumStripes(idx uint64) uint64 {
	if t := d.tree; t != nil {
		return t.sumTree(idx)
	}
	var total uint64
	for s := uint64(0); s <= d.stripeMask; s++ {
		total += d.readers[idx][s].Load()
	}
	return total
}

// Epoch returns the current global epoch.
func (d *Domain) Epoch() uint64 { return d.globalEpoch.Load() }

// ActiveReaders returns the current sum over stripes of the parity-idx
// reader counter. It is a diagnostic: the value is immediately stale.
func (d *Domain) ActiveReaders(idx uint64) uint64 { return d.sumStripes(idx & 1) }

// StripeReaders returns the current value of one stripe (or tree leaf) of
// the parity-idx counter (diagnostics and striping tests).
func (d *Domain) StripeReaders(idx uint64, stripe int) uint64 {
	if t := d.tree; t != nil {
		return t.cnt[idx&1][uint64(stripe)&t.leafMask].Load()
	}
	return d.readers[idx&1][uint64(stripe)&d.stripeMask].Load()
}

// Retries returns the total number of read-side verification failures.
func (d *Domain) Retries() uint64 { return d.retries.Load() }

// Synchronizes returns the total number of Synchronize calls.
func (d *Domain) Synchronizes() uint64 { return d.synchronizes.Load() }
