package ebr

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestEnterExitBalancesCounters(t *testing.T) {
	d := New()
	g := d.Enter()
	if got := d.ActiveReaders(g.idx); got != 1 {
		t.Fatalf("ActiveReaders during section = %d, want 1", got)
	}
	if g.Epoch() != 0 {
		t.Fatalf("guard epoch = %d, want 0", g.Epoch())
	}
	g.Exit()
	if got := d.ActiveReaders(0) + d.ActiveReaders(1); got != 0 {
		t.Fatalf("ActiveReaders after Exit = %d, want 0", got)
	}
}

func TestExitZeroGuardPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exit of zero Guard did not panic")
		}
	}()
	var g Guard
	g.Exit()
}

func TestReadRunsFunction(t *testing.T) {
	d := New()
	ran := false
	d.Read(func() {
		ran = true
		if got := d.ActiveReaders(0); got != 1 {
			t.Errorf("ActiveReaders inside Read = %d, want 1", got)
		}
	})
	if !ran {
		t.Fatal("Read did not invoke fn")
	}
}

func TestSynchronizeAdvancesEpoch(t *testing.T) {
	d := New()
	for i := 1; i <= 5; i++ {
		d.Synchronize()
		if got := d.Epoch(); got != uint64(i) {
			t.Fatalf("Epoch after %d Synchronize = %d", i, got)
		}
	}
	if got := d.Synchronizes(); got != 5 {
		t.Fatalf("Synchronizes = %d, want 5", got)
	}
}

// A writer must block in Synchronize until a reader that linearized against
// the pre-advance epoch exits (paper Lemma 3: the reader's snapshot cannot be
// reclaimed underneath it).
func TestSynchronizeWaitsForPriorReader(t *testing.T) {
	d := New()
	g := d.Enter()

	done := make(chan struct{})
	go func() {
		d.Synchronize()
		close(done)
	}()

	select {
	case <-done:
		t.Fatal("Synchronize returned while a prior reader was still active")
	case <-time.After(20 * time.Millisecond):
	}

	g.Exit()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Synchronize did not return after reader exit")
	}
}

// A reader that linearizes *after* the epoch advance must not block the
// writer: it recorded against the new parity (paper's two-snapshot argument).
func TestSynchronizeIgnoresNewEpochReaders(t *testing.T) {
	d := New()
	// Reader on epoch 0 parity.
	g0 := d.Enter()

	syncStarted := make(chan struct{})
	done := make(chan struct{})
	go func() {
		close(syncStarted)
		d.Synchronize() // advances epoch 0 -> 1, waits on parity 0
		close(done)
	}()
	<-syncStarted
	// Wait until the writer has advanced the epoch.
	for d.Epoch() == 0 {
		time.Sleep(time.Millisecond)
	}

	// New reader linearizes against epoch 1: must not be waited on.
	g1 := d.Enter()
	if g1.Epoch() != 1 {
		t.Fatalf("new reader epoch = %d, want 1", g1.Epoch())
	}

	select {
	case <-done:
		t.Fatal("Synchronize returned while the epoch-0 reader was active")
	case <-time.After(10 * time.Millisecond):
	}

	g0.Exit()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Synchronize blocked on a new-epoch reader")
	}
	g1.Exit()
}

func TestConcurrentSynchronizePanics(t *testing.T) {
	d := New()
	g := d.Enter() // hold the writer in its wait loop
	started := make(chan struct{})
	go func() {
		close(started)
		d.Synchronize()
	}()
	<-started
	for d.Epoch() == 0 {
		time.Sleep(time.Millisecond)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("second concurrent Synchronize did not panic")
			}
			g.Exit() // release the first writer
		}()
		d.Synchronize()
	}()
}

// Verification-failure path: force the epoch to move between the reader's
// load and increment by interleaving manually through the exported pieces.
// We can't pause a goroutine mid-Enter, so instead hammer Enter/Exit against
// a rapidly synchronizing writer and require that (a) retries occur and
// (b) counters still balance.
func TestEnterRetriesUnderEpochChurn(t *testing.T) {
	d := New()
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			d.Synchronize()
		}
	}()
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 20000; i++ {
				g := d.Enter()
				g.Exit()
			}
		}()
	}
	readers.Wait()
	stop.Store(true)
	wg.Wait()
	if got := d.ActiveReaders(0) + d.ActiveReaders(1); got != 0 {
		t.Fatalf("reader counters unbalanced after churn: %d", got)
	}
	// Retries are probabilistic; with tens of thousands of ops against a
	// spinning writer the expected count is far above zero. Log rather
	// than assert to keep the test deterministic.
	t.Logf("verification retries observed: %d", d.Retries())
}

// Property: any nesting-free sequence of Enter/Exit pairs leaves both
// counters at zero and never drives them negative (they are uint64: a
// negative excursion would appear as a huge value).
func TestCounterBalanceProperty(t *testing.T) {
	f := func(sections uint8, syncsBetween uint8) bool {
		d := New()
		for i := 0; i < int(sections%32); i++ {
			g := d.Enter()
			if d.ActiveReaders(g.idx) == 0 || d.ActiveReaders(g.idx) > uint64(sections) {
				return false
			}
			g.Exit()
			for s := 0; s < int(syncsBetween%4); s++ {
				d.Synchronize()
			}
		}
		return d.ActiveReaders(0) == 0 && d.ActiveReaders(1) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewAtEpoch(t *testing.T) {
	d := NewAtEpoch(41)
	if got := d.Epoch(); got != 41 {
		t.Fatalf("Epoch = %d, want 41", got)
	}
	g := d.Enter()
	if g.idx != 1 {
		t.Fatalf("parity index for epoch 41 = %d, want 1", g.idx)
	}
	g.Exit()
}
