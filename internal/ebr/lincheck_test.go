package ebr

import (
	"math"
	"testing"
	"time"

	"rcuarray/internal/check"
)

// TestLincheckParityBlocksAcrossOverflow is the deterministic-schedule
// version of the overflow coverage: where TestReclamationAcrossOverflow
// races wall-clock goroutines and can only observe the *absence* of a
// violation, this test parks a reader mid-critical-section at every epoch
// across the uint64 wrap and positively asserts that Synchronize blocks on
// it — including the two wrap-edge flips MaxUint64→0 and 0→1 where a
// parity bug would let the writer skip the stalled reader's counter.
//
// Each round: reader enters and parks; writer begins Synchronize, which
// must still be running after a grace period; a fresh reader on a third
// task enters at the new parity, verifies nothing was reclaimed early, and
// exits without unblocking the writer; the parked reader finally exits and
// both ops complete. The whole schedule is driven by check.Driver, so a
// failure reproduces exactly.
func TestLincheckParityBlocksAcrossOverflow(t *testing.T) {
	const rounds = 8
	start := uint64(math.MaxUint64) - rounds/2 // wrap happens mid-sequence
	dom := NewAtEpoch(start)
	d := check.NewDriver("ebr/parity-overflow", 1, 3)
	defer d.Close()

	hold := make(chan struct{})
	entered := make(chan uint64)
	for r := 0; r < rounds; r++ {
		before := dom.Epoch()
		freed := false

		d.Begin(0, check.Op{Kind: "read"}, func(op *check.Op) {
			g := dom.Enter()
			entered <- g.Epoch()
			<-hold
			if freed {
				op.Out = 1 // reclaimed while we were mid-critical-section
			}
			g.Exit()
		})
		gotEpoch := <-entered
		if gotEpoch != before {
			t.Fatalf("round %d: guard epoch %d, want %d", r, gotEpoch, before)
		}

		d.Begin(1, check.Op{Kind: "sync"}, func(*check.Op) {
			dom.Synchronize()
			freed = true
		})
		if !d.StillRunning(1, 2*time.Millisecond) {
			t.Fatalf("round %d (epoch %d): Synchronize completed past a reader mid-critical-section", r, before)
		}

		// A reader arriving at the flipped parity must neither observe a
		// premature reclamation nor unblock the writer.
		fresh := d.Do(2, check.Op{Kind: "read"}, func(op *check.Op) {
			g := dom.Enter()
			if freed {
				op.Out = 1
			}
			op.Out2 = int64(g.Epoch() & 1)
			g.Exit()
		})
		if fresh.Out != 0 {
			t.Fatalf("round %d: fresh reader observed early reclamation", r)
		}
		if fresh.Out2 == int64(before&1) {
			t.Fatalf("round %d: fresh reader entered at pre-flip parity %d", r, fresh.Out2)
		}
		if !d.StillRunning(1, time.Millisecond) {
			t.Fatalf("round %d: new-parity reader unblocked Synchronize", r)
		}

		hold <- struct{}{}
		if rd := d.Await(0); rd.Out != 0 || rd.Panic != "" {
			t.Fatalf("round %d: parked reader saw reclamation (out=%d panic=%q)", r, rd.Out, rd.Panic)
		}
		if sy := d.Await(1); sy.Panic != "" {
			t.Fatalf("round %d: Synchronize panicked: %s", r, sy.Panic)
		}
		if after := dom.Epoch(); after != before+1 { // wraps naturally
			t.Fatalf("round %d: epoch %d after Synchronize, want %d", r, after, before+1)
		}
	}
	// start + rounds wraps past zero: 2^64-4 + 8 ≡ 4 (mod 2^64).
	if e := dom.Epoch(); e != start+rounds || e >= start {
		t.Fatalf("epoch %d after wrap sequence, want %d (< start)", e, start+rounds)
	}
	if dom.Synchronizes() != rounds {
		t.Fatalf("synchronizes = %d, want %d", dom.Synchronizes(), rounds)
	}
}

// TestLincheckStripeSummation is the striped-layout analogue: readers park
// mid-critical-section on *different stripes* of the same parity, and the
// schedule releases them one at a time, asserting after every single exit
// that Synchronize is still blocked. A summation bug that early-outs on the
// first zero stripe, sums the wrong parity's stripes, or misses the last
// stripe would let the writer through while a reader is still parked — the
// deterministic release order makes each such escape reproducible.
func TestLincheckStripeSummation(t *testing.T) {
	const stripes = 4
	dom := NewStriped(stripes)
	d := check.NewDriver("ebr/stripe-summation", 1, stripes+2)
	defer d.Close()
	writer := stripes // task index of the Synchronize caller
	fresh := stripes + 1

	holds := make([]chan struct{}, stripes)
	entered := make(chan uint64, 1)
	for slot := 0; slot < stripes; slot++ {
		holds[slot] = make(chan struct{})
		slot := slot
		d.Begin(slot, check.Op{Kind: "read"}, func(op *check.Op) {
			g := dom.EnterSlot(slot)
			entered <- g.Epoch()
			<-holds[slot]
			g.Exit()
		})
		if e := <-entered; e != 0 {
			t.Fatalf("stripe-%d reader entered at epoch %d, want 0", slot, e)
		}
	}
	for slot := 0; slot < stripes; slot++ {
		if got := dom.StripeReaders(0, slot); got != 1 {
			t.Fatalf("stripe %d occupancy = %d before Synchronize, want 1", slot, got)
		}
	}

	d.Begin(writer, check.Op{Kind: "sync"}, func(*check.Op) {
		dom.Synchronize()
	})

	// Release in reverse stripe order so the summation pass repeatedly sees
	// zeros on high stripes while a low stripe is still occupied.
	for slot := stripes - 1; slot >= 0; slot-- {
		if !d.StillRunning(writer, 2*time.Millisecond) {
			t.Fatalf("Synchronize completed with stripes 0..%d still occupied", slot)
		}
		// A reader entering at the advanced epoch lands on the new parity
		// and must not unblock the writer.
		post := d.Do(fresh, check.Op{Kind: "read"}, func(op *check.Op) {
			g := dom.EnterSlot(slot)
			op.Out2 = int64(g.Epoch() & 1)
			g.Exit()
		})
		if post.Out2 != 1 {
			t.Fatalf("post-advance reader on slot %d entered parity %d, want 1", slot, post.Out2)
		}
		if !d.StillRunning(writer, time.Millisecond) {
			t.Fatalf("new-parity reader on slot %d unblocked Synchronize", slot)
		}
		close(holds[slot])
		if rd := d.Await(slot); rd.Panic != "" {
			t.Fatalf("stripe-%d reader panicked: %s", slot, rd.Panic)
		}
	}
	if sy := d.Await(writer); sy.Panic != "" {
		t.Fatalf("Synchronize panicked: %s", sy.Panic)
	}
	if e := dom.Epoch(); e != 1 {
		t.Fatalf("epoch after Synchronize = %d, want 1", e)
	}
	for parity := uint64(0); parity < 2; parity++ {
		for s := 0; s < stripes; s++ {
			if got := dom.StripeReaders(parity, s); got != 0 {
				t.Fatalf("stripe [%d][%d] = %d after schedule, want 0", parity, s, got)
			}
		}
	}
}

// TestLincheckPinnedRepinHandsOffGrace drives the pinned-session writer
// handoff deterministically: a pinned reader blocks Synchronize, repins
// (exit old parity + re-enter new parity), the writer completes even though
// the session is still live, and a second Synchronize blocks on the
// repinned session until Unpin.
func TestLincheckPinnedRepinHandsOffGrace(t *testing.T) {
	dom := NewStriped(4)
	d := check.NewDriver("ebr/pinned-repin", 1, 2)
	defer d.Close()

	step := make(chan struct{})
	repinned := make(chan struct{})
	d.Begin(0, check.Op{Kind: "pin"}, func(*check.Op) {
		p := dom.Pin(1, 1<<20) // budget never reached; repins are explicit
		<-step
		p.Repin()
		repinned <- struct{}{}
		<-step
		p.Unpin()
	})

	d.Begin(1, check.Op{Kind: "sync"}, func(*check.Op) {
		dom.Synchronize()
	})
	if !d.StillRunning(1, 2*time.Millisecond) {
		t.Fatal("first Synchronize completed past a pinned session")
	}
	step <- struct{}{}
	<-repinned
	if sy := d.Await(1); sy.Panic != "" {
		t.Fatalf("first Synchronize panicked: %s", sy.Panic)
	}

	// The session survived the repin and now pins the *new* parity: a
	// second grace period must block on it until Unpin.
	d.Begin(1, check.Op{Kind: "sync"}, func(*check.Op) {
		dom.Synchronize()
	})
	if !d.StillRunning(1, 2*time.Millisecond) {
		t.Fatal("second Synchronize completed past the repinned session")
	}
	step <- struct{}{}
	if rd := d.Await(0); rd.Panic != "" {
		t.Fatalf("pinned task panicked: %s", rd.Panic)
	}
	if sy := d.Await(1); sy.Panic != "" {
		t.Fatalf("second Synchronize panicked: %s", sy.Panic)
	}
	if dom.Synchronizes() != 2 {
		t.Fatalf("synchronizes = %d, want 2", dom.Synchronizes())
	}
}
