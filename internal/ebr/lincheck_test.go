package ebr

import (
	"math"
	"testing"
	"time"

	"rcuarray/internal/check"
)

// TestLincheckParityBlocksAcrossOverflow is the deterministic-schedule
// version of the overflow coverage: where TestReclamationAcrossOverflow
// races wall-clock goroutines and can only observe the *absence* of a
// violation, this test parks a reader mid-critical-section at every epoch
// across the uint64 wrap and positively asserts that Synchronize blocks on
// it — including the two wrap-edge flips MaxUint64→0 and 0→1 where a
// parity bug would let the writer skip the stalled reader's counter.
//
// Each round: reader enters and parks; writer begins Synchronize, which
// must still be running after a grace period; a fresh reader on a third
// task enters at the new parity, verifies nothing was reclaimed early, and
// exits without unblocking the writer; the parked reader finally exits and
// both ops complete. The whole schedule is driven by check.Driver, so a
// failure reproduces exactly.
func TestLincheckParityBlocksAcrossOverflow(t *testing.T) {
	const rounds = 8
	start := uint64(math.MaxUint64) - rounds/2 // wrap happens mid-sequence
	dom := NewAtEpoch(start)
	d := check.NewDriver("ebr/parity-overflow", 1, 3)
	defer d.Close()

	hold := make(chan struct{})
	entered := make(chan uint64)
	for r := 0; r < rounds; r++ {
		before := dom.Epoch()
		freed := false

		d.Begin(0, check.Op{Kind: "read"}, func(op *check.Op) {
			g := dom.Enter()
			entered <- g.Epoch()
			<-hold
			if freed {
				op.Out = 1 // reclaimed while we were mid-critical-section
			}
			g.Exit()
		})
		gotEpoch := <-entered
		if gotEpoch != before {
			t.Fatalf("round %d: guard epoch %d, want %d", r, gotEpoch, before)
		}

		d.Begin(1, check.Op{Kind: "sync"}, func(*check.Op) {
			dom.Synchronize()
			freed = true
		})
		if !d.StillRunning(1, 2*time.Millisecond) {
			t.Fatalf("round %d (epoch %d): Synchronize completed past a reader mid-critical-section", r, before)
		}

		// A reader arriving at the flipped parity must neither observe a
		// premature reclamation nor unblock the writer.
		fresh := d.Do(2, check.Op{Kind: "read"}, func(op *check.Op) {
			g := dom.Enter()
			if freed {
				op.Out = 1
			}
			op.Out2 = int64(g.Epoch() & 1)
			g.Exit()
		})
		if fresh.Out != 0 {
			t.Fatalf("round %d: fresh reader observed early reclamation", r)
		}
		if fresh.Out2 == int64(before&1) {
			t.Fatalf("round %d: fresh reader entered at pre-flip parity %d", r, fresh.Out2)
		}
		if !d.StillRunning(1, time.Millisecond) {
			t.Fatalf("round %d: new-parity reader unblocked Synchronize", r)
		}

		hold <- struct{}{}
		if rd := d.Await(0); rd.Out != 0 || rd.Panic != "" {
			t.Fatalf("round %d: parked reader saw reclamation (out=%d panic=%q)", r, rd.Out, rd.Panic)
		}
		if sy := d.Await(1); sy.Panic != "" {
			t.Fatalf("round %d: Synchronize panicked: %s", r, sy.Panic)
		}
		if after := dom.Epoch(); after != before+1 { // wraps naturally
			t.Fatalf("round %d: epoch %d after Synchronize, want %d", r, after, before+1)
		}
	}
	// start + rounds wraps past zero: 2^64-4 + 8 ≡ 4 (mod 2^64).
	if e := dom.Epoch(); e != start+rounds || e >= start {
		t.Fatalf("epoch %d after wrap sequence, want %d (< start)", e, start+rounds)
	}
	if dom.Synchronizes() != rounds {
		t.Fatalf("synchronizes = %d, want %d", dom.Synchronizes(), rounds)
	}
}
