package ebr

// Exhaustive model checking of Algorithm 1. The protocol is re-expressed as
// explicit atomic steps over a small shared state, and a depth-first search
// with state deduplication enumerates EVERY interleaving of a bounded
// configuration (2 readers x 2 ops, 1 serialized writer x 3 writes). At
// each reader access step the model asserts the lemmas:
//
//   - Lemma 3: the snapshot loaded after a verified record is live, and
//     stays live for the remainder of the critical section;
//   - Lemma 1: at most two snapshots are live at any reachable state;
//   - Lemma 2: all of the above also holds when the epoch counter starts at
//     the wrap-around boundary (parity is what matters, not magnitude).
//
// The model is intentionally independent of the production code — it checks
// the *algorithm* the code implements; the torture tests check the code.

import (
	"fmt"
	"math"
	"testing"
)

const (
	mcReaders      = 2
	mcOpsPerReader = 2
	mcWrites       = 3
	mcMaxSnaps     = mcWrites + 1
)

// mcState is one global state of the protocol. It must be a comparable
// value type so visited-state deduplication can use it as a map key.
type mcState struct {
	epoch   uint64
	readers [2]uint8

	current uint8            // id of the published snapshot
	live    [mcMaxSnaps]bool // liveness per snapshot id
	nextID  uint8            // next snapshot id to allocate

	// writer
	wpc     uint8 // 0:clone 1:publish 2:fetchAdd 3:wait 4:free, 5:done-all
	wWrites uint8 // completed writes
	wNew    uint8 // snapshot being installed
	wOld    uint8 // snapshot to free
	wIdx    uint8 // parity to wait on

	// readers
	r [mcReaders]mcReader
}

type mcReader struct {
	pc    uint8 // 0:loadEpoch 1:incr 2:verify 3:access 4:recheck 5:decr, 6:done-op
	ops   uint8 // completed ops
	epoch uint64
	idx   uint8
	snap  uint8
}

type mcChecker struct {
	visited map[mcState]bool
	verify  bool // model the Algorithm-1 verification step (line 13)?
	err     error
}

func TestModelCheckEBR(t *testing.T) {
	if err := runModel(0, true); err != nil {
		t.Fatal(err)
	}
}

// Lemma 2: identical exploration starting at the uint64 overflow boundary.
func TestModelCheckEBROverflow(t *testing.T) {
	if err := runModel(math.MaxUint64-1, true); err != nil {
		t.Fatal(err)
	}
}

// Meta-test: the checker itself must be able to find the bug the verify
// step exists to prevent. With verification disabled (readers trust the
// epoch they loaded), some interleaving lets a writer reclaim a snapshot a
// recorded reader still holds — the exact scenario Section III-A describes.
func TestModelCheckDetectsUnverifiedBug(t *testing.T) {
	err := runModel(0, false)
	if err == nil {
		t.Fatal("model checker missed the unverified-read reclamation bug")
	}
	t.Logf("checker correctly reported: %v", err)
}

func runModel(epoch0 uint64, verify bool) error {
	init := mcState{epoch: epoch0, nextID: 1}
	init.live[0] = true // initial snapshot id 0
	mc := &mcChecker{visited: make(map[mcState]bool), verify: verify}
	mc.explore(init)
	if mc.err == nil && len(mc.visited) == 0 {
		return fmt.Errorf("model explored no states")
	}
	return mc.err
}

func (mc *mcChecker) explore(s mcState) {
	if mc.err != nil || mc.visited[s] {
		return
	}
	mc.visited[s] = true

	if err := checkInvariants(s); err != nil {
		mc.err = err
		return
	}

	progressed := false
	// Writer step.
	if next, ok := stepWriter(s); ok {
		progressed = true
		mc.explore(next)
	}
	// Reader steps.
	for i := 0; i < mcReaders; i++ {
		for _, next := range stepReader(s, i, mc.verify) {
			progressed = true
			mc.explore(next)
		}
	}
	if !progressed && !isTerminal(s) {
		mc.err = fmt.Errorf("deadlock at non-terminal state %+v", s)
	}
}

func checkInvariants(s mcState) error {
	// Lemma 1: at most two live snapshots.
	liveCount := 0
	for _, l := range s.live {
		if l {
			liveCount++
		}
	}
	if liveCount > 2 {
		return fmt.Errorf("Lemma 1 violated: %d live snapshots in %+v", liveCount, s)
	}
	// The published snapshot is always live.
	if !s.live[s.current] {
		return fmt.Errorf("published snapshot %d is not live: %+v", s.current, s)
	}
	// Lemma 3: a reader holding a snapshot (pc 4 or 5: after access,
	// before decrement) must see it live.
	for i := range s.r {
		r := s.r[i]
		if (r.pc == 4 || r.pc == 5) && !s.live[r.snap] {
			return fmt.Errorf("Lemma 3 violated: reader %d holds freed snapshot %d in %+v", i, r.snap, s)
		}
	}
	return nil
}

func isTerminal(s mcState) bool {
	if !(s.wpc == 0 && s.wWrites == mcWrites) {
		return false
	}
	for _, r := range s.r {
		if !(r.pc == 0 && r.ops == mcOpsPerReader) {
			return false
		}
	}
	return true
}

// stepWriter returns the successor state if the writer can take a step.
// Writes are serialized (the paper's WriteLock), so a single writer thread
// performs mcWrites RCU_Write operations back to back.
func stepWriter(s mcState) (mcState, bool) {
	if s.wWrites == mcWrites && s.wpc == 0 {
		return s, false // all writes done
	}
	n := s
	switch s.wpc {
	case 0: // clone: allocate the next snapshot
		if s.nextID >= mcMaxSnaps {
			panic(fmt.Sprintf("model: snapshot ids exhausted: %+v", s))
		}
		n.wOld = s.current
		n.wNew = s.nextID
		n.nextID++
		n.live[n.wNew] = true
		n.wpc = 1
	case 1: // publish the clone
		n.current = s.wNew
		n.wpc = 2
	case 2: // epoch = GE.fetchAdd(1); idx = epoch % 2
		n.wIdx = uint8(s.epoch & 1)
		n.epoch = s.epoch + 1 // natural wrap at MaxUint64
		n.wpc = 3
	case 3: // wait for readers of the prior parity
		if s.readers[s.wIdx] != 0 {
			return s, false // blocked
		}
		n.wpc = 4
	case 4: // free the old snapshot; write complete
		n.live[s.wOld] = false
		n.wWrites++
		n.wpc = 0
	}
	return n, true
}

// stepReader returns the successor states for reader i (the verify step has
// a single deterministic outcome per state, so there is at most one).
func stepReader(s mcState, i int, verify bool) []mcState {
	r := s.r[i]
	if r.pc == 0 && r.ops == mcOpsPerReader {
		return nil // all ops done
	}
	n := s
	nr := &n.r[i]
	switch r.pc {
	case 0: // epoch = GE.load
		nr.epoch = s.epoch
		nr.pc = 1
	case 1: // EpochReaders[epoch%2]++
		nr.idx = uint8(r.epoch & 1)
		n.readers[nr.idx]++
		nr.pc = 2
	case 2: // verify: GE.load == epoch ?
		if !verify || s.epoch == r.epoch {
			nr.pc = 3 // linearized (or recklessly assumed so)
		} else {
			// undo and retry
			n.readers[r.idx]--
			nr.pc = 0
		}
	case 3: // access: snap = GlobalSnapshot (checked live by invariant)
		nr.snap = s.current
		nr.pc = 4
	case 4: // linger inside the section (re-check hazard window)
		nr.pc = 5
	case 5: // EpochReaders[idx]--; op done
		n.readers[r.idx]--
		nr.pc = 0
		nr.ops++
	}
	return []mcState{n}
}
