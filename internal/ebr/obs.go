package ebr

import (
	"rcuarray/internal/obs"
)

// domainObs bundles the observability handles one domain reports into. The
// handles are resolved once (registry lookups are mutex-guarded) and held
// here so the instrumented paths stay allocation- and lock-free.
type domainObs struct {
	// grace is the grace-period duration histogram: one observation per
	// Synchronize, from epoch advance to last old-parity reader exit.
	grace *obs.Histogram
	// stalls counts epoch-advance stall passes: backoff waits spent in
	// Synchronize because an old-parity reader was still inside.
	stalls *obs.Counter
	// retries counts read-side verification failures (mirrors Domain
	// retries, but in the registry so /metrics can serve it).
	retries *obs.Counter
	// repins counts pinned-session budget exhaustions.
	repins *obs.Counter
}

func makeDomainObs(r *obs.Registry) *domainObs {
	return &domainObs{
		grace:   r.Histogram("ebr_grace_ns"),
		stalls:  r.Counter("ebr_grace_stall_passes_total"),
		retries: r.Counter("ebr_enter_retries_total"),
		repins:  r.Counter("ebr_pin_budget_exhausted_total"),
	}
}

// defaultDomainObs reports into the process-global registry; domains not
// claimed by Observe share it (their counts aggregate, which is what a
// process-wide /metrics page wants).
var defaultDomainObs = makeDomainObs(obs.Default)

// Observe redirects this domain's metrics into r — a dist node or a test
// gives each domain its own registry this way. Call before the domain sees
// concurrent use; it replaces the default process-global destination.
//
// For hierarchical domains it also publishes the tree shape as gauges
// (ebr_tree_depth / ebr_tree_fanout / ebr_tree_leaves), so a metrics scrape
// can tell which rendezvous layout a run used and how wide its fold was.
func (d *Domain) Observe(r *obs.Registry) {
	d.o.Store(makeDomainObs(r))
	if d.tree != nil {
		r.Gauge("ebr_tree_depth").Set(int64(d.TreeDepth()))
		r.Gauge("ebr_tree_fanout").Set(int64(d.Fanout()))
		r.Gauge("ebr_tree_leaves").Set(int64(d.TreeLeaves()))
	}
}

// obsHandles returns the domain's metric destination.
func (d *Domain) obsHandles() *domainObs {
	if o := d.o.Load(); o != nil {
		return o
	}
	return defaultDomainObs
}
