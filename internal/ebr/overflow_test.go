package ebr

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

// Lemma 2: two EpochReaders suffice for safe reclamation even when
// GlobalEpoch overflows, because successive epochs differ in parity and the
// wrap from all-ones to zero preserves that alternation.
func TestParityPreservedAcrossOverflow(t *testing.T) {
	d := NewAtEpoch(math.MaxUint64 - 1)
	// Epochs: MaxUint64-1 (parity 0), MaxUint64 (parity 1), 0 (parity 0), 1...
	wantParity := []uint64{0, 1, 0, 1, 0}
	for i, want := range wantParity {
		g := d.Enter()
		if g.idx != want {
			t.Fatalf("step %d: epoch %d parity = %d, want %d", i, g.Epoch(), g.idx, want)
		}
		g.Exit()
		d.Synchronize()
	}
	if got := d.Epoch(); got != 3 {
		t.Fatalf("epoch after wrap sequence = %d, want 3", got)
	}
}

// Run the full reclamation protocol across the overflow boundary with
// concurrent readers and verify no reader ever observes a retired node.
func TestReclamationAcrossOverflow(t *testing.T) {
	d := NewAtEpoch(math.MaxUint64 - 8)

	type node struct {
		retired atomic.Bool
		value   int
	}
	var current atomic.Pointer[node]
	current.Store(&node{value: 0})

	var stop atomic.Bool
	var violations atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				g := d.Enter()
				n := current.Load()
				if n.retired.Load() {
					violations.Add(1)
				}
				_ = n.value
				if n.retired.Load() {
					violations.Add(1)
				}
				g.Exit()
			}
		}()
	}

	// Writer: 32 replacements, crossing the uint64 boundary.
	for i := 1; i <= 32; i++ {
		old := current.Load()
		current.Store(&node{value: i})
		d.Synchronize()
		old.retired.Store(true)
	}
	stop.Store(true)
	wg.Wait()

	if v := violations.Load(); v != 0 {
		t.Fatalf("%d reader(s) observed a retired node across epoch overflow", v)
	}
	if e := d.Epoch(); e != 23 { // (MaxUint64-8) + 32 ≡ 23 (mod 2^64)
		t.Fatalf("epoch after overflow = %d, want 23", e)
	}
}

// The paper's overflow scenario in Lemma 2's proof sketch: a preempted
// reader's verification can succeed against a *wrapped-around* epoch of equal
// value. With 64-bit epochs we cannot wrap all the way during a pause, but we
// can verify the parity math the proof relies on for arbitrary epochs.
func TestParityMathProperty(t *testing.T) {
	epochs := []uint64{0, 1, 2, math.MaxUint64 - 1, math.MaxUint64, math.MaxUint64 / 2}
	for _, e := range epochs {
		succ := e + 1 // may wrap
		if e&1 == succ&1 {
			t.Fatalf("epoch %d and successor %d share parity", e, succ)
		}
	}
}
