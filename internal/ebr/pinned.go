package ebr

import "rcuarray/internal/obs"

// DefaultPinBudget is the number of Tick calls a pinned session serves
// before it voluntarily repins. It bounds how long one pin can hold an epoch
// open — and therefore how long a concurrent Synchronize can be made to
// wait — while still amortizing the two read-side RMWs over many operations.
const DefaultPinBudget = 1024

// Pinned is an amortized read-side session: one Enter serving many
// operations. The paper's Algorithm 1 pays two atomic RMWs per read; a
// Pinned session pays them once per budget-window instead, which is the
// read-side amortization of Dewan & Jenkins' follow-up work transplanted
// onto the two-counter protocol.
//
// A pinned reader holds its epoch open, so an unbounded pin would starve
// writers in Synchronize. The budget caps that: every Tick counts one
// operation, and when the budget is spent the session exits and re-enters
// the critical section (a repin), giving any waiting writer its grace
// period. Callers that cache epoch-protected state (snapshot pointers)
// must refresh it whenever Tick or Repin report a repin.
//
// A Pinned must not be copied and is not safe for concurrent use; it is a
// per-task object, like the task slot that names its stripe.
type Pinned struct {
	d      *Domain
	g      Guard
	slot   int
	budget int
	ops    int
	repins uint64
}

// Pin opens a pinned read-side session on the stripe selected by slot.
// budget <= 0 selects DefaultPinBudget.
func (d *Domain) Pin(slot, budget int) Pinned {
	if budget <= 0 {
		budget = DefaultPinBudget
	}
	p := Pinned{d: d, g: d.EnterSlot(slot), slot: slot, budget: budget}
	if obs.On() {
		// Re-annotate over EnterSlot's mark: a stall report should say the
		// culprit is a pinned session, not a plain reader.
		d.annotate(p.g.idx, p.g.stripe, slot, sitePin)
	}
	return p
}

// Epoch returns the epoch of the current pin window.
func (p *Pinned) Epoch() uint64 { return p.g.Epoch() }

// Tick accounts one operation against the pin budget and reports whether
// the session repinned (in which case any state the caller resolved under
// the previous pin window must be re-resolved).
func (p *Pinned) Tick() bool {
	p.ops++
	if p.ops < p.budget {
		return false
	}
	if obs.On() {
		p.d.obsHandles().repins.Inc()
	}
	p.Repin()
	return true
}

// Repin ends the current pin window and immediately starts a new one,
// letting any writer blocked in Synchronize complete its grace period.
func (p *Pinned) Repin() {
	p.g.Exit()
	p.g = p.d.EnterSlot(p.slot)
	if obs.On() {
		p.d.annotate(p.g.idx, p.g.stripe, p.slot, siteRepin)
	}
	p.ops = 0
	p.repins++
}

// Unpin ends the session. The session must not be used afterwards; a second
// Unpin panics (via Guard.Exit's double-exit detection).
func (p *Pinned) Unpin() { p.g.Exit() }

// Repins returns how many budget-exhaustion repins the session performed
// (ablation diagnostics).
func (p *Pinned) Repins() uint64 { return p.repins }

// Budget returns the session's per-window operation budget.
func (p *Pinned) Budget() int { return p.budget }
