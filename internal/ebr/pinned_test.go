package ebr

import (
	"testing"
	"time"
)

func TestPinDefaultBudget(t *testing.T) {
	d := New()
	p := d.Pin(0, 0)
	defer p.Unpin()
	if got := p.Budget(); got != DefaultPinBudget {
		t.Errorf("Pin(0, 0).Budget() = %d, want %d", got, DefaultPinBudget)
	}
	p2 := d.Pin(0, -5)
	defer p2.Unpin()
	if got := p2.Budget(); got != DefaultPinBudget {
		t.Errorf("Pin(0, -5).Budget() = %d, want %d", got, DefaultPinBudget)
	}
}

// Tick stays false within the budget window and reports true exactly when
// the window is spent — at which point the session has re-entered under a
// fresh guard and the repin counter advanced.
func TestTickRepinsOnBudgetExhaustion(t *testing.T) {
	d := New()
	p := d.Pin(0, 4)
	defer p.Unpin()
	for i := 0; i < 3; i++ {
		if p.Tick() {
			t.Fatalf("Tick %d repinned before budget spent", i+1)
		}
	}
	if !p.Tick() {
		t.Fatal("Tick at budget did not repin")
	}
	if got := p.Repins(); got != 1 {
		t.Errorf("Repins() = %d, want 1", got)
	}
	// A fresh window: three more ticks fit before the next repin.
	for i := 0; i < 3; i++ {
		if p.Tick() {
			t.Fatalf("post-repin Tick %d repinned early", i+1)
		}
	}
	if !p.Tick() {
		t.Fatal("second window's budget-exhausting Tick did not repin")
	}
	if got := p.Repins(); got != 2 {
		t.Errorf("Repins() = %d, want 2", got)
	}
}

// A pinned session holds its epoch open: Synchronize must block until the
// session repins (exiting the old parity), then complete — the budget is
// what keeps pinned readers from starving writers.
func TestPinBlocksSynchronizeUntilRepin(t *testing.T) {
	d := New()
	p := d.Pin(3, 8)
	done := make(chan struct{})
	go func() {
		d.Synchronize()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Synchronize returned past a pinned reader")
	case <-time.After(10 * time.Millisecond):
	}
	p.Repin()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Synchronize did not return after the pinned session repinned")
	}
	p.Unpin()
}

// Same, but the repin comes from Tick exhausting the budget rather than an
// explicit Repin.
func TestPinBlocksSynchronizeUntilBudgetTick(t *testing.T) {
	d := New()
	p := d.Pin(0, 2)
	done := make(chan struct{})
	go func() {
		d.Synchronize()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Synchronize returned past a pinned reader")
	case <-time.After(10 * time.Millisecond):
	}
	if p.Tick() {
		t.Fatal("first Tick of a 2-op budget repinned")
	}
	if !p.Tick() {
		t.Fatal("second Tick of a 2-op budget did not repin")
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Synchronize did not return after the budget-exhausting Tick")
	}
	p.Unpin()
}

func TestUnpinReleasesReader(t *testing.T) {
	d := NewStriped(4)
	p := d.Pin(2, 16)
	if got := d.StripeReaders(d.Epoch(), 2); got != 1 {
		t.Fatalf("stripe 2 while pinned = %d, want 1", got)
	}
	p.Unpin()
	if got := d.ActiveReaders(0) + d.ActiveReaders(1); got != 0 {
		t.Fatalf("counters after Unpin = %d, want 0", got)
	}
	done := make(chan struct{})
	go func() {
		d.Synchronize()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Synchronize blocked after Unpin")
	}
}

func TestDoubleUnpinPanics(t *testing.T) {
	d := New()
	p := d.Pin(0, 16)
	p.Unpin()
	defer func() {
		if recover() == nil {
			t.Fatal("second Unpin did not panic")
		}
	}()
	p.Unpin()
}

// The repin re-enters on the same slot, so a session stays on its stripe
// across windows.
func TestRepinStaysOnStripe(t *testing.T) {
	d := NewStriped(4)
	p := d.Pin(3, 1)
	for i := 0; i < 5; i++ {
		if !p.Tick() { // budget 1: every Tick repins
			t.Fatalf("Tick %d with budget 1 did not repin", i)
		}
	}
	if got := d.StripeReaders(d.Epoch(), 3); got != 1 {
		t.Errorf("stripe 3 after repins = %d, want 1", got)
	}
	if got := p.Repins(); got != 5 {
		t.Errorf("Repins() = %d, want 5", got)
	}
	p.Unpin()
}

// The pin window epoch is observable and moves forward across a repin when
// a writer has advanced the global epoch in between.
func TestPinEpochAdvancesAcrossRepin(t *testing.T) {
	d := New()
	p := d.Pin(0, 8)
	e0 := p.Epoch()
	go d.Synchronize() // blocks on us; advances the global epoch first
	for d.Epoch() == e0 {
		time.Sleep(time.Millisecond)
	}
	p.Repin()
	if got := p.Epoch(); got <= e0 {
		t.Errorf("epoch after repin = %d, want > %d", got, e0)
	}
	p.Unpin()
}
