package ebr

import (
	"sync"
	"testing"
	"time"
)

func TestStripeSizing(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {8, 8},
		{9, 16}, {16, 16}, {44, MaxStripes}, {1000, MaxStripes},
	}
	for _, c := range cases {
		if got := NewStriped(c.n).Stripes(); got != c.want {
			t.Errorf("NewStriped(%d).Stripes() = %d, want %d", c.n, got, c.want)
		}
	}
	if got := NewFlat().Stripes(); got != 1 {
		t.Errorf("NewFlat().Stripes() = %d, want 1", got)
	}
	var zero Domain
	if got := zero.Stripes(); got != 1 {
		t.Errorf("zero Domain Stripes() = %d, want 1", got)
	}
	if got := New().Stripes(); got != DefaultStripes {
		t.Errorf("New().Stripes() = %d, want %d", got, DefaultStripes)
	}
}

// Distinct slots land on distinct stripes (up to the stripe count), and
// ActiveReaders sums them.
func TestEnterSlotSpreadsStripes(t *testing.T) {
	d := NewStriped(4)
	guards := make([]Guard, 4)
	for slot := range guards {
		guards[slot] = d.EnterSlot(slot)
	}
	for slot := range guards {
		if got := d.StripeReaders(0, slot); got != 1 {
			t.Errorf("stripe %d = %d, want 1", slot, got)
		}
	}
	if got := d.ActiveReaders(0); got != 4 {
		t.Errorf("ActiveReaders(0) = %d, want 4", got)
	}
	// Slots beyond the stripe count wrap onto existing stripes.
	g := d.EnterSlot(4) // 4 & 3 == 0
	if got := d.StripeReaders(0, 0); got != 2 {
		t.Errorf("stripe 0 after wrapped slot = %d, want 2", got)
	}
	g.Exit()
	for i := range guards {
		guards[i].Exit()
	}
	if got := d.ActiveReaders(0) + d.ActiveReaders(1); got != 0 {
		t.Errorf("counters after exits = %d, want 0", got)
	}
}

// Synchronize must wait for a reader on ANY stripe of the retired parity —
// the summation cannot early-out after seeing some zero stripes.
func TestSynchronizeWaitsOnEveryStripe(t *testing.T) {
	for slot := 0; slot < 4; slot++ {
		d := NewStriped(4)
		g := d.EnterSlot(slot)
		done := make(chan struct{})
		go func() {
			d.Synchronize()
			close(done)
		}()
		select {
		case <-done:
			t.Fatalf("Synchronize returned past a reader on stripe %d", slot)
		case <-time.After(10 * time.Millisecond):
		}
		g.Exit()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("Synchronize did not return after stripe-%d reader exit", slot)
		}
	}
}

// Readers spread over every stripe, exiting in an adversarial order
// (highest stripe first, so the summation pass keeps finding the lower
// stripes nonzero): Synchronize completes only after the last exit.
func TestSynchronizeSumsAllStripes(t *testing.T) {
	d := NewStriped(4)
	guards := make([]Guard, 4)
	for slot := range guards {
		guards[slot] = d.EnterSlot(slot)
	}
	done := make(chan struct{})
	go func() {
		d.Synchronize()
		close(done)
	}()
	for slot := len(guards) - 1; slot >= 0; slot-- {
		select {
		case <-done:
			t.Fatalf("Synchronize returned with %d stripes still occupied", slot+1)
		case <-time.After(5 * time.Millisecond):
		}
		guards[slot].Exit()
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Synchronize did not return after all stripes emptied")
	}
}

// Guard misuse: exiting the same guard twice panics.
func TestDoubleExitPanics(t *testing.T) {
	d := New()
	g := d.Enter()
	g.Exit()
	defer func() {
		if recover() == nil {
			t.Fatal("double Exit did not panic")
		}
	}()
	g.Exit()
}

// Guard misuse: exiting a copy of an already-exited guard underflows the
// stripe counter, which the decrement detects.
func TestCopiedGuardExitUnderflowPanics(t *testing.T) {
	d := New()
	g := d.Enter()
	gCopy := g // copies the pre-exit state: the copy's exited flag stays false
	g.Exit()
	defer func() {
		if recover() == nil {
			t.Fatal("Exit of copied already-exited guard did not panic")
		}
	}()
	gCopy.Exit()
}

// A copied guard may legitimately be exited when the original never was —
// the counter stays balanced; only the *extra* exit is a bug.
func TestCopiedGuardSingleExitIsFine(t *testing.T) {
	d := New()
	g := d.Enter()
	gCopy := g
	gCopy.Exit()
	if got := d.ActiveReaders(0) + d.ActiveReaders(1); got != 0 {
		t.Fatalf("counters after copied-guard exit = %d, want 0", got)
	}
}

// Retries accounting still works under the striped layout: hammer
// EnterSlot on many slots against a spinning writer and require balanced
// counters on every stripe.
func TestRetriesAndBalanceUnderStripedChurn(t *testing.T) {
	d := NewStriped(8)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				d.Synchronize()
			}
		}
	}()
	var readers sync.WaitGroup
	iters := 20000
	if testing.Short() {
		iters = 2000
	}
	for slot := 0; slot < 8; slot++ {
		readers.Add(1)
		go func(slot int) {
			defer readers.Done()
			for i := 0; i < iters; i++ {
				g := d.EnterSlot(slot)
				g.Exit()
			}
		}(slot)
	}
	readers.Wait()
	close(stop)
	wg.Wait()
	for parity := uint64(0); parity < 2; parity++ {
		for s := 0; s < d.Stripes(); s++ {
			if got := d.StripeReaders(parity, s); got != 0 {
				t.Errorf("stripe [%d][%d] unbalanced after churn: %d", parity, s, got)
			}
		}
	}
	t.Logf("verification retries observed: %d", d.Retries())
}

// Read releases the reader counter even when fn panics — the reader-leak
// regression: before the deferred exit, a panicking read-side closure
// permanently inflated the counter and wedged every later Synchronize.
func TestReadReleasesGuardOnPanic(t *testing.T) {
	d := New()
	func() {
		defer func() { _ = recover() }()
		d.Read(func() { panic("poisoned block") })
	}()
	if got := d.ActiveReaders(0) + d.ActiveReaders(1); got != 0 {
		t.Fatalf("reader counter leaked across panic: %d", got)
	}
	done := make(chan struct{})
	go func() {
		d.Synchronize()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Synchronize wedged after panicking Read")
	}
}
