package ebr

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rcuarray/internal/memory"
)

// torture exercises Lemma 3 (a recorded+verified reader may safely access the
// current snapshot) in the style of rcutorture: a writer continuously
// replaces a protected object, synchronizes, and retires the old version; a
// pack of readers continuously dereferences the object inside read-side
// critical sections. The memory.Object poison turns any premature
// reclamation into a panic, and value checks detect torn publications.
func TestTortureReadersVsWriter(t *testing.T) {
	if testing.Short() {
		t.Skip("torture test skipped in -short mode")
	}

	type snap struct {
		memory.Object
		a, b uint64 // invariant: b == a+1
	}
	var current atomic.Pointer[snap]
	current.Store(&snap{a: 0, b: 1})

	d := New()
	var stop atomic.Bool
	var readerOps atomic.Int64
	const readers = 6

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				g := d.Enter()
				s := current.Load()
				s.CheckLive() // use-after-free detector
				if s.b != s.a+1 {
					t.Errorf("torn snapshot: a=%d b=%d", s.a, s.b)
				}
				// Linger to widen the race window, then re-check:
				// the writer must still not have reclaimed us.
				for i := 0; i < 32; i++ {
					_ = s.a
				}
				s.CheckLive()
				g.Exit()
				readerOps.Add(1)
			}
		}()
	}

	deadline := time.Now().Add(300 * time.Millisecond)
	writes := 0
	for time.Now().Before(deadline) {
		old := current.Load()
		current.Store(&snap{a: old.a + 2, b: old.a + 3})
		d.Synchronize()
		old.Retire() // any reader still holding old would now trip CheckLive
		writes++
	}
	stop.Store(true)
	wg.Wait()

	if writes == 0 || readerOps.Load() == 0 {
		t.Fatalf("torture made no progress: writes=%d readerOps=%d", writes, readerOps.Load())
	}
	t.Logf("torture: %d writes, %d reads, %d verify retries", writes, readerOps.Load(), d.Retries())
	if got := d.ActiveReaders(0) + d.ActiveReaders(1); got != 0 {
		t.Fatalf("reader counters unbalanced after torture: %d", got)
	}
}

// Multiple writers serialized by an external lock (the WriteLock discipline
// of the paper) must be safe and must keep at most two versions live.
func TestTortureSerializedWriters(t *testing.T) {
	if testing.Short() {
		t.Skip("torture test skipped in -short mode")
	}

	type snap struct {
		memory.Object
		v uint64
	}
	var current atomic.Pointer[snap]
	var liveCount atomic.Int64
	newSnap := func(v uint64) *snap {
		liveCount.Add(1)
		return &snap{v: v}
	}
	retire := func(s *snap) {
		s.Retire()
		liveCount.Add(-1)
	}
	current.Store(newSnap(0))

	d := New()
	var writeLock sync.Mutex
	var stop atomic.Bool
	var maxLive atomic.Int64

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				g := d.Enter()
				s := current.Load()
				s.CheckLive()
				if l := liveCount.Load(); l > maxLive.Load() {
					maxLive.Store(l)
				}
				g.Exit()
			}
		}()
	}

	var writers sync.WaitGroup
	for w := 0; w < 3; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 50; i++ {
				writeLock.Lock()
				old := current.Load()
				current.Store(newSnap(old.v + 1))
				d.Synchronize()
				retire(old)
				writeLock.Unlock()
			}
		}()
	}
	writers.Wait()
	stop.Store(true)
	wg.Wait()

	if got := current.Load().v; got != 150 {
		t.Fatalf("final version = %d, want 150", got)
	}
	// Lemma 1: at most two snapshots live at once under serialized writers.
	if got := maxLive.Load(); got > 2 {
		t.Fatalf("observed %d live snapshots, want <= 2", got)
	}
}
