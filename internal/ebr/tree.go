package ebr

// Hierarchical (combining-tree) grace periods.
//
// The flat Domain layout makes every Synchronize sum *all* reader stripes on
// every backoff pass, so the writer-side rendezvous cost grows linearly with
// the number of locales even after all but one subtree has drained. The
// tree layout — modeled on the hierarchy verified in Liang/McKenney/Kroening/
// Melham's Tree-RCU proof — stripes the leaf counters per (locale,
// slot-group), folds each locale's leaves into a per-locale pending mask, and
// folds the locale masks into a cluster root mask. A leaf (or whole locale
// subtree) that has drained is cleared from its parent mask and never
// rechecked, so a pass over the tree touches O(remaining subtrees) cache
// lines and the steady-state pass cost is O(log locales), not O(locales ×
// stripes).
//
// Readers never touch the interior of the tree: Enter/Exit cost is identical
// to the flat layout (one increment and one decrement of a leaf counter plus
// the epoch verification). Only the writer folds, and the writer already
// holds the cluster WriteLock, so the pending masks live on the writer's
// stack — no shared interior nodes, no extra reader-visible state, and the
// parity/verification protocol (including Lemma 2's overflow argument) is
// byte-for-byte the flat one. The equivalence property test in tree_test.go
// drives identical traces through both layouts to pin that down.

import (
	"math/bits"

	"rcuarray/internal/obs"
	"rcuarray/internal/xsync"
)

// TreeFanout is the combining-tree fanout: leaves per per-locale node, and
// per-locale nodes under the root. Eight is the Linux Tree-RCU default for
// the bottom level and keeps each node's pending mask inside one byte.
const TreeFanout = 8

// MaxTreeLeaves caps the total leaf count: TreeFanout locales × TreeFanout
// slot-groups. Beyond that, extra locales hash onto existing leaves — partial
// sharing, never incorrectness (same argument as MaxStripes).
const MaxTreeLeaves = TreeFanout * TreeFanout

// tree is the hierarchical counter layout. It is immutable after
// construction; only the leaf counters themselves are written at runtime.
type tree struct {
	// leaves is the total leaf count (power of two, ≤ MaxTreeLeaves).
	leaves int
	// groupsPerLocale is the number of leaves assigned to each locale
	// (power of two, ≤ TreeFanout). LeafFor uses it to keep one locale's
	// readers inside one subtree, which is what lets a drained locale be
	// dropped from the fold in one mask clear.
	groupsPerLocale int
	// leafMask maps an arbitrary leaf index onto [0, leaves).
	leafMask uint64
	// cnt are the per-parity leaf counters: [parity][leaf]. Each leaf owns
	// its cache line, exactly like the flat layout's stripes.
	cnt [2][]xsync.PaddedUint64
}

// NewTree returns a domain whose reader counters form a combining tree with
// one subtree per locale and groupsPerLocale leaf counters per subtree (each
// rounded to a power of two; the total is clamped to MaxTreeLeaves).
// Synchronize folds the tree hierarchically; readers use LeafFor to pick
// their leaf and otherwise follow the flat protocol unchanged.
func NewTree(locales, groupsPerLocale int) *Domain {
	gpl := xsync.RoundPow2(groupsPerLocale, TreeFanout)
	n := xsync.RoundPow2(locales, TreeFanout) * gpl
	t := &tree{
		leaves:          n,
		groupsPerLocale: gpl,
		leafMask:        uint64(n - 1),
	}
	t.cnt[0] = make([]xsync.PaddedUint64, n)
	t.cnt[1] = make([]xsync.PaddedUint64, n)
	return &Domain{tree: t}
}

// NewTreeAtEpoch returns a tree domain whose epoch starts at e (overflow and
// parity tests start just below the uint64 boundary, mirroring NewAtEpoch).
func NewTreeAtEpoch(locales, groupsPerLocale int, e uint64) *Domain {
	d := NewTree(locales, groupsPerLocale)
	d.globalEpoch.Store(e)
	return d
}

// IsTree reports whether the domain uses the hierarchical layout.
func (d *Domain) IsTree() bool { return d.tree != nil }

// TreeLeaves returns the leaf-counter count (0 for flat domains).
func (d *Domain) TreeLeaves() int {
	if d.tree == nil {
		return 0
	}
	return d.tree.leaves
}

// TreeDepth returns the number of levels a Synchronize fold traverses: root →
// per-locale nodes → leaves. Flat domains report 1 (one level of stripes).
func (d *Domain) TreeDepth() int {
	if d.tree == nil {
		return 1
	}
	return 3
}

// Fanout returns the combining-tree fanout (1 for flat domains, where the
// writer has no interior nodes to fan into).
func (d *Domain) Fanout() int {
	if d.tree == nil {
		return 1
	}
	return TreeFanout
}

// LeafFor maps (locale, task slot) to the leaf index readers on that locale
// should pass to EnterSlot. Slots within one locale spread over that locale's
// groupsPerLocale leaves; the whole locale stays inside one subtree.
func (d *Domain) LeafFor(locale, slot int) int {
	t := d.tree
	if t == nil {
		return slot
	}
	return int((uint64(locale)*uint64(t.groupsPerLocale) + uint64(slot)&uint64(t.groupsPerLocale-1)) & t.leafMask)
}

// enterTree is EnterSlot for the hierarchical layout: the identical
// load/increment/verify protocol against a tree leaf.
func (d *Domain) enterTree(t *tree, slot int) Guard {
	leaf := uint64(slot) & t.leafMask
	for {
		epoch := d.globalEpoch.Load()
		idx := epoch & 1
		cell := &t.cnt[idx][leaf]
		cell.Inc()
		if d.globalEpoch.Load() == epoch {
			return Guard{d: d, cell: cell, epoch: epoch, idx: idx, stripe: leaf}
		}
		cell.Dec()
		d.retries.Inc()
		if obs.On() {
			d.obsHandles().retries.Inc()
		}
	}
}

// foldTree waits for parity idx's leaves to drain, hierarchically: a root
// mask holds one bit per per-locale node, each node a mask with one bit per
// leaf. A pass visits only subtrees still pending; a leaf observed at zero is
// cleared and never rechecked, and a node whose leaves have all cleared is
// dropped from the root mask.
//
// Never rechecking a drained leaf is safe for the same reason one flat pass
// is: a linearized old-parity reader incremented its leaf *before* our epoch
// advance, so the leaf cannot read zero while that reader is inside. Any
// old-parity increment arriving after the leaf reads zero is a verification
// failure — the epoch already advanced — which undoes itself and re-enters at
// the new parity, never dereferencing the retired snapshot.
//
// The pending masks are writer-local (the caller holds writerActive), so the
// interior of the tree costs no shared memory and no reader-visible protocol.
func (t *tree) foldTree(idx uint64) (stalls uint64) {
	nodes := (t.leaves + TreeFanout - 1) / TreeFanout
	var leafPend [MaxTreeLeaves / TreeFanout]uint64
	var root uint64
	for n := 0; n < nodes; n++ {
		lo := n * TreeFanout
		hi := lo + TreeFanout
		if hi > t.leaves {
			hi = t.leaves
		}
		leafPend[n] = (uint64(1) << uint(hi-lo)) - 1
		root |= uint64(1) << uint(n)
	}
	var b xsync.Backoff
	for root != 0 {
		for rm := root; rm != 0; rm &= rm - 1 {
			n := bits.TrailingZeros64(rm)
			pend := leafPend[n]
			for lm := pend; lm != 0; lm &= lm - 1 {
				l := bits.TrailingZeros64(lm)
				if t.cnt[idx][n*TreeFanout+l].Load() == 0 {
					pend &^= uint64(1) << uint(l)
				}
			}
			leafPend[n] = pend
			if pend == 0 {
				root &^= uint64(1) << uint(n)
			}
		}
		if root != 0 {
			b.Wait()
			stalls++
		}
	}
	return stalls
}

// sumTree is the diagnostic sum over parity idx's leaves.
func (t *tree) sumTree(idx uint64) uint64 {
	var total uint64
	for l := range t.cnt[idx] {
		total += t.cnt[idx][l].Load()
	}
	return total
}
