package ebr

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestTreeShape(t *testing.T) {
	cases := []struct {
		locales, groups         int
		wantLeaves, wantStripes int
		wantDepth, wantFanout   int
	}{
		{1, 1, 1, 1, 3, TreeFanout},
		{1, 8, 8, 8, 3, TreeFanout},
		{4, 4, 16, 16, 3, TreeFanout},
		{8, 8, 64, 64, 3, TreeFanout},
		{100, 100, MaxTreeLeaves, MaxTreeLeaves, 3, TreeFanout}, // clamped
	}
	for _, c := range cases {
		d := NewTree(c.locales, c.groups)
		if !d.IsTree() {
			t.Fatalf("NewTree(%d,%d).IsTree() = false", c.locales, c.groups)
		}
		if got := d.TreeLeaves(); got != c.wantLeaves {
			t.Fatalf("NewTree(%d,%d).TreeLeaves() = %d, want %d", c.locales, c.groups, got, c.wantLeaves)
		}
		if got := d.Stripes(); got != c.wantStripes {
			t.Fatalf("NewTree(%d,%d).Stripes() = %d, want %d", c.locales, c.groups, got, c.wantStripes)
		}
		if got := d.TreeDepth(); got != c.wantDepth {
			t.Fatalf("TreeDepth() = %d, want %d", got, c.wantDepth)
		}
		if got := d.Fanout(); got != c.wantFanout {
			t.Fatalf("Fanout() = %d, want %d", got, c.wantFanout)
		}
	}
	if d := NewFlat(); d.IsTree() || d.TreeDepth() != 1 || d.Fanout() != 1 || d.TreeLeaves() != 0 {
		t.Fatalf("flat domain reports tree shape: depth=%d fanout=%d leaves=%d",
			d.TreeDepth(), d.Fanout(), d.TreeLeaves())
	}
}

// LeafFor keeps each locale's readers inside one contiguous leaf group — the
// property that lets the fold drop a whole drained locale subtree in one
// mask clear.
func TestTreeLeafMapping(t *testing.T) {
	d := NewTree(4, 4)
	for locale := 0; locale < 4; locale++ {
		lo, hi := locale*4, locale*4+4
		for slot := 0; slot < 32; slot++ {
			leaf := d.LeafFor(locale, slot)
			if leaf < lo || leaf >= hi {
				t.Fatalf("LeafFor(%d,%d) = %d, outside locale group [%d,%d)", locale, slot, leaf, lo, hi)
			}
		}
	}
	// Distinct slots within one locale spread over the whole group.
	seen := map[int]bool{}
	for slot := 0; slot < 4; slot++ {
		seen[d.LeafFor(2, slot)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("LeafFor(2, 0..3) hit %d distinct leaves, want 4", len(seen))
	}
	// Readers land where they announce: the guarded leaf counter is visible
	// through StripeReaders at the mapped index.
	leaf := d.LeafFor(3, 1)
	g := d.EnterSlot(leaf)
	if got := d.StripeReaders(g.idx, leaf); got != 1 {
		t.Fatalf("StripeReaders(leaf %d) = %d after EnterSlot, want 1", leaf, got)
	}
	g.Exit()
}

// xorshift64 is the deterministic op-stream generator for the equivalence
// property test (seed-replayable, no global rand).
type xorshift64 uint64

func (x *xorshift64) next() uint64 {
	v := uint64(*x)
	if v == 0 {
		v = 1
	}
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift64(v)
	return v
}

// runEquivalenceTrace drives one seeded enter/exit/synchronize trace through
// a flat and a tree domain in lockstep and returns a textual log of every
// grace-period admission decision (epoch and parity admitted at each enter,
// epoch at each synchronize). The two domains must agree at every step; any
// divergence is a test failure, and the returned log is byte-for-byte
// reproducible from the seed.
func runEquivalenceTrace(t *testing.T, seed uint64, steps int) string {
	t.Helper()
	flat := NewStriped(8)
	tree := NewTree(2, 4) // 8 leaves: same cell count, hierarchical fold
	var log strings.Builder
	fmt.Fprintf(&log, "seed=%#x\n", seed)

	type pair struct{ f, tr Guard }
	var held []pair
	rng := xorshift64(seed)
	for i := 0; i < steps; i++ {
		op := rng.next() % 10
		switch {
		case op < 5 || len(held) == 0 && op < 8: // enter
			slot := int(rng.next() % 16)
			gf := flat.EnterSlot(slot)
			gt := tree.EnterSlot(slot)
			if gf.Epoch() != gt.Epoch() || gf.idx != gt.idx {
				t.Fatalf("step %d: enter admission diverged: flat (epoch %d parity %d) vs tree (epoch %d parity %d)",
					i, gf.Epoch(), gf.idx, gt.Epoch(), gt.idx)
			}
			held = append(held, pair{gf, gt})
			fmt.Fprintf(&log, "enter slot=%d epoch=%d parity=%d\n", slot, gf.Epoch(), gf.idx)
		case op < 8: // exit a random held guard
			k := int(rng.next() % uint64(len(held)))
			held[k].f.Exit()
			held[k].tr.Exit()
			fmt.Fprintf(&log, "exit k=%d\n", k)
			held = append(held[:k], held[k+1:]...)
		default: // synchronize — single-threaded, so only when no reader is held
			if len(held) != 0 {
				// An in-flight reader at the current parity would deadlock a
				// same-goroutine Synchronize; both layouts share that rule.
				fmt.Fprintf(&log, "sync skipped held=%d\n", len(held))
				continue
			}
			flat.Synchronize()
			tree.Synchronize()
			if flat.Epoch() != tree.Epoch() {
				t.Fatalf("step %d: post-sync epoch diverged: flat %d vs tree %d", i, flat.Epoch(), tree.Epoch())
			}
			fmt.Fprintf(&log, "sync epoch=%d\n", flat.Epoch())
		}
		for parity := uint64(0); parity < 2; parity++ {
			if f, tr := flat.ActiveReaders(parity), tree.ActiveReaders(parity); f != tr {
				t.Fatalf("step %d: parity-%d reader count diverged: flat %d vs tree %d", i, parity, f, tr)
			}
		}
	}
	for _, p := range held {
		p.f.Exit()
		p.tr.Exit()
	}
	if flat.Synchronizes() != tree.Synchronizes() {
		t.Fatalf("synchronize count diverged: flat %d vs tree %d", flat.Synchronizes(), tree.Synchronizes())
	}
	return log.String()
}

// Satellite: tree/flat equivalence. Identical seeded traces through both
// layouts must make identical admission decisions, and the pinned seed must
// replay byte-for-byte.
func TestTreeFlatEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 42, 0xBADC0FFE} {
		t.Run(fmt.Sprintf("seed=%#x", seed), func(t *testing.T) {
			first := runEquivalenceTrace(t, seed, 400)
			replay := runEquivalenceTrace(t, seed, 400)
			if first != replay {
				t.Fatalf("seed %#x trace is not byte-for-byte reproducible:\n--- first ---\n%s--- replay ---\n%s", seed, first, replay)
			}
		})
	}
}

// Tree counterpart of TestParityPreservedAcrossOverflow: Lemma 2's parity
// alternation survives the uint64 wrap with the hierarchical counters too.
func TestTreeParityPreservedAcrossOverflow(t *testing.T) {
	d := NewTreeAtEpoch(4, 4, math.MaxUint64-1)
	wantParity := []uint64{0, 1, 0, 1, 0}
	for i, want := range wantParity {
		g := d.EnterSlot(d.LeafFor(i%4, i))
		if g.idx != want {
			t.Fatalf("step %d: epoch %d parity = %d, want %d", i, g.Epoch(), g.idx, want)
		}
		g.Exit()
		d.Synchronize()
	}
	if got := d.Epoch(); got != 3 {
		t.Fatalf("epoch after wrap sequence = %d, want 3", got)
	}
}

// Tree counterpart of TestReclamationAcrossOverflow: concurrent readers
// spread over distinct locales' subtrees, writer folding the tree across the
// epoch overflow boundary; no reader may observe a retired node.
func TestTreeReclamationAcrossOverflow(t *testing.T) {
	d := NewTreeAtEpoch(4, 2, math.MaxUint64-8)

	type node struct {
		retired atomic.Bool
		value   int
	}
	var current atomic.Pointer[node]
	current.Store(&node{value: 0})

	var stop atomic.Bool
	var violations atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			leaf := d.LeafFor(r%4, r)
			for !stop.Load() {
				g := d.EnterSlot(leaf)
				n := current.Load()
				if n.retired.Load() {
					violations.Add(1)
				}
				_ = n.value
				if n.retired.Load() {
					violations.Add(1)
				}
				g.Exit()
			}
		}(r)
	}

	for i := 1; i <= 32; i++ {
		old := current.Load()
		current.Store(&node{value: i})
		d.Synchronize()
		old.retired.Store(true)
	}
	stop.Store(true)
	wg.Wait()

	if v := violations.Load(); v != 0 {
		t.Fatalf("%d reader(s) observed a retired node across epoch overflow (tree)", v)
	}
	if e := d.Epoch(); e != 23 {
		t.Fatalf("epoch after overflow = %d, want 23", e)
	}
}

// The fold must complete when subtrees drain in arbitrary staggered order —
// including the adversarial one where the *first* locale's leaf drains last,
// so the root mask shrinks from the far end.
func TestTreeFoldStaggeredDrain(t *testing.T) {
	d := NewTree(8, 2)
	const readers = 8
	var gs [readers]Guard
	for r := 0; r < readers; r++ {
		gs[r] = d.EnterSlot(d.LeafFor(r, 0))
	}
	done := make(chan struct{})
	go func() {
		d.Synchronize()
		close(done)
	}()
	// Release locale subtrees from the highest leaf down to leaf 0.
	for r := readers - 1; r >= 0; r-- {
		select {
		case <-done:
			t.Errorf("Synchronize returned with %d old-parity readers still inside", r+1)
		default:
		}
		gs[r].Exit()
	}
	<-done
	if got := d.Synchronizes(); got != 1 {
		t.Fatalf("Synchronizes() = %d, want 1", got)
	}
}
