package ebr

import (
	"sync/atomic"
	"time"

	"rcuarray/internal/obs"
)

// Grace-period stall watchdog. A writer stuck in Synchronize means some
// reader entered before the epoch advance and never exited — a leaked guard,
// an unbounded pinned session, a deadlocked handler. The watchdog samples the
// domain's in-flight grace period and, once its age passes the threshold,
// names the culprit: the stripe (or tree leaf) still holding the old parity
// open, and the (slot, entry site) annotation its last reader stored.
//
// False-positive discipline. The only signal is grace-period age, which is
// inherently immune to slow-but-live readers: a reader that enters after the
// epoch advance lands on the NEW parity and is never waited on, so the old
// parity's count can only fall. A warning therefore requires a single reader
// to have stayed inside for the whole threshold — exactly the condition being
// hunted. Each grace period warns at most once (the episode is keyed by the
// Synchronize's start stamp), and the next Synchronize re-arms the watchdog.

// watchdogTracePid is the trace track stall instants are written to, above
// the locale/node (0..n), comm (1<<15), and dist driver (1<<16) namespaces.
const watchdogTracePid = 1 << 17

// StallReport names one stalled grace period. Stripe/Slot/Site are -1/-1/
// "unknown" when the stall resolved between detection and attribution.
type StallReport struct {
	Domain        string // WatchdogConfig.Name
	GraceAgeNanos int64  // how long the Synchronize has been waiting
	Parity        uint64 // parity being waited out
	Stripe        int    // counter cell still held open, -1 if drained
	Readers       uint64 // that cell's reader count at sampling time
	Slot          int    // last annotated reader slot on the cell
	Site          string // how that reader entered: enter, pin, repin
	// PinAgeNanos is a lower bound on how long the culprit has been pinned:
	// it entered before the epoch advance, so at least the grace age. The
	// read path deliberately takes no timestamps, so no tighter bound exists.
	PinAgeNanos int64
}

// WatchdogConfig tunes a domain watchdog. Zero values select the defaults in
// parentheses.
type WatchdogConfig struct {
	// Name labels this domain in reports and trace events ("ebr").
	Name string
	// Threshold is the grace-period age that counts as a stall (1s).
	Threshold time.Duration
	// Interval is the sampling period (Threshold/8, floor 10ms).
	Interval time.Duration
	// Obs receives rcu_stall_warnings_total, the rcu_grace_age_ns gauge,
	// and the rcu.stall trace instants (obs.Default).
	Obs *obs.Registry
	// OnStall, when set, runs on the watchdog goroutine for every warning —
	// the flight-recorder hook (rcutorture dumps the registry here).
	OnStall func(StallReport)
}

// Watchdog samples one domain. Stop it before discarding the domain.
type Watchdog struct {
	d        *Domain
	cfg      WatchdogConfig
	warnings *obs.Counter
	ring     *obs.Ring
	nStall   obs.NameID
	count    atomic.Uint64
	fired    int64 // syncStart value already warned for (watchdog goroutine only)
	stop     chan struct{}
	done     chan struct{}
}

// StartWatchdog arms a grace-period stall watchdog on the domain. Sampling
// runs on its own goroutine and is fully gated on obs.On(): with
// observability off the domain publishes no grace-period state and the
// watchdog sees nothing.
func (d *Domain) StartWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Name == "" {
		cfg.Name = "ebr"
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = time.Second
	}
	if cfg.Interval <= 0 {
		cfg.Interval = cfg.Threshold / 8
		if cfg.Interval < 10*time.Millisecond {
			cfg.Interval = 10 * time.Millisecond
		}
	}
	r := cfg.Obs
	if r == nil {
		r = obs.Default
	}
	tr := r.Tracer()
	w := &Watchdog{
		d:        d,
		cfg:      cfg,
		warnings: r.Counter("rcu_stall_warnings_total"),
		ring:     tr.Ring(watchdogTracePid, 0),
		nStall:   tr.Name("rcu.stall"),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	r.GaugeFunc("rcu_grace_age_ns", func() int64 {
		s := d.syncStart.Load()
		if s == 0 {
			return 0
		}
		return time.Now().UnixNano() - s
	})
	go w.run()
	return w
}

// Stop halts the sampler and waits for it to exit.
func (w *Watchdog) Stop() {
	close(w.stop)
	<-w.done
}

// Warnings returns how many stall warnings this watchdog has fired — the
// chaos harness gates false positives on it staying zero.
func (w *Watchdog) Warnings() uint64 { return w.count.Load() }

func (w *Watchdog) run() {
	defer close(w.done)
	t := time.NewTicker(w.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.sample()
		}
	}
}

func (w *Watchdog) sample() {
	if !obs.On() {
		return
	}
	start := w.d.syncStart.Load()
	if start == 0 {
		return // no grace period in flight
	}
	age := time.Now().UnixNano() - start
	if age < w.cfg.Threshold.Nanoseconds() {
		return
	}
	if w.fired == start {
		return // this episode already warned
	}
	w.fired = start
	w.fire(age)
}

// fire attributes and reports one stall. The culprit scan re-reads live
// counters, so a stall that drains between detection and attribution reports
// Stripe -1 rather than blaming an innocent cell.
func (w *Watchdog) fire(age int64) {
	rep := StallReport{
		Domain:        w.cfg.Name,
		GraceAgeNanos: age,
		Parity:        w.d.syncParity.Load(),
		Stripe:        -1,
		Slot:          -1,
		Site:          "unknown",
		PinAgeNanos:   age,
	}
	for s := 0; s < w.d.Stripes(); s++ {
		c := w.d.StripeReaders(rep.Parity, s)
		if c == 0 {
			continue
		}
		rep.Stripe = s
		rep.Readers = c
		if a := w.d.lastEntry[rep.Parity&1][uint64(s)&(MaxStripes-1)].Load(); a&1 != 0 {
			rep.Slot = int(a >> 3)
			rep.Site = siteName(a >> 1 & 3)
		}
		break
	}
	w.warnings.Inc()
	w.count.Add(1)
	if obs.On() {
		w.ring.Instant(w.nStall, age)
	}
	if w.cfg.OnStall != nil {
		w.cfg.OnStall(rep)
	}
}
