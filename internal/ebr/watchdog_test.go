package ebr

import (
	"sync"
	"testing"
	"time"

	"rcuarray/internal/obs"
)

func withObs(t *testing.T) {
	t.Helper()
	was := obs.On()
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(was) })
}

// TestWatchdogTrueStall: a reader that sits inside the domain while a
// Synchronize waits must draw exactly one warning naming its (slot, site) —
// and the episode must not re-fire while the same grace period keeps aging.
func TestWatchdogTrueStall(t *testing.T) {
	withObs(t)
	d := NewStriped(4)
	d.Observe(obs.NewRegistry())

	var mu sync.Mutex
	var reports []StallReport
	reg := obs.NewRegistry()
	w := d.StartWatchdog(WatchdogConfig{
		Threshold: 50 * time.Millisecond,
		Interval:  5 * time.Millisecond,
		Obs:       reg,
		OnStall: func(r StallReport) {
			mu.Lock()
			reports = append(reports, r)
			mu.Unlock()
		},
	})
	defer w.Stop()

	const slot = 5
	g := d.EnterSlot(slot)
	done := make(chan struct{})
	go func() {
		d.Synchronize()
		close(done)
	}()

	// The warning must arrive while the reader is stuck; then the episode is
	// over — give it several more sampling intervals to prove it stays quiet.
	deadline := time.After(2 * time.Second)
	for w.Warnings() == 0 {
		select {
		case <-deadline:
			g.Exit()
			<-done
			t.Fatal("no stall warning within 2s of a pinned reader")
		case <-time.After(5 * time.Millisecond):
		}
	}
	time.Sleep(100 * time.Millisecond)
	if n := w.Warnings(); n != 1 {
		t.Fatalf("stalled grace period drew %d warnings, want exactly 1", n)
	}

	mu.Lock()
	rep := reports[0]
	mu.Unlock()
	if rep.Slot != slot || rep.Site != "enter" {
		t.Fatalf("report named slot %d via %q, want slot %d via enter", rep.Slot, rep.Site, slot)
	}
	if rep.Stripe != slot%d.Stripes() {
		t.Fatalf("report named stripe %d, want %d", rep.Stripe, slot%d.Stripes())
	}
	if rep.Readers == 0 {
		t.Fatal("report shows zero readers on the blamed stripe")
	}
	if age := time.Duration(rep.GraceAgeNanos); age < 50*time.Millisecond {
		t.Fatalf("reported grace age %v below the threshold", age)
	}
	if rep.PinAgeNanos != rep.GraceAgeNanos {
		t.Fatalf("pin age %d must equal the grace-age lower bound %d", rep.PinAgeNanos, rep.GraceAgeNanos)
	}

	g.Exit()
	<-done

	// A fresh, healthy Synchronize re-arms the episode without warning.
	d.Synchronize()
	time.Sleep(50 * time.Millisecond)
	if n := w.Warnings(); n != 1 {
		t.Fatalf("healthy Synchronize after the stall drew a warning (total %d)", n)
	}
}

// TestWatchdogPinnedSiteAttribution: a stall held through the Pin API reports
// site "pin", not "enter".
func TestWatchdogPinnedSiteAttribution(t *testing.T) {
	withObs(t)
	d := NewStriped(4)
	d.Observe(obs.NewRegistry())

	var mu sync.Mutex
	var reports []StallReport
	w := d.StartWatchdog(WatchdogConfig{
		Threshold: 50 * time.Millisecond,
		Interval:  5 * time.Millisecond,
		Obs:       obs.NewRegistry(),
		OnStall: func(r StallReport) {
			mu.Lock()
			reports = append(reports, r)
			mu.Unlock()
		},
	})
	defer w.Stop()

	p := d.Pin(2, 100)
	done := make(chan struct{})
	go func() {
		d.Synchronize()
		close(done)
	}()
	deadline := time.After(2 * time.Second)
	for w.Warnings() == 0 {
		select {
		case <-deadline:
			p.Unpin()
			<-done
			t.Fatal("no warning for a stalled pinned session")
		case <-time.After(5 * time.Millisecond):
		}
	}
	mu.Lock()
	rep := reports[0]
	mu.Unlock()
	p.Unpin()
	<-done
	if rep.Slot != 2 || rep.Site != "pin" {
		t.Fatalf("report named slot %d via %q, want slot 2 via pin", rep.Slot, rep.Site)
	}
}

// TestWatchdogSlowButLive: readers that keep entering and exiting — however
// slowly — must never draw a warning, because a post-advance reader lands on
// the new parity and is not waited on. The writer synchronizes continuously
// under that churn.
func TestWatchdogSlowButLive(t *testing.T) {
	withObs(t)
	d := NewStriped(4)
	d.Observe(obs.NewRegistry())
	w := d.StartWatchdog(WatchdogConfig{
		Threshold: 60 * time.Millisecond,
		Interval:  5 * time.Millisecond,
		Obs:       obs.NewRegistry(),
	})
	defer w.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				g := d.EnterSlot(slot)
				time.Sleep(20 * time.Millisecond) // slow, but shorter than the threshold
				g.Exit()
			}
		}(r)
	}
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		d.Synchronize()
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if n := w.Warnings(); n != 0 {
		t.Fatalf("slow-but-live readers drew %d false-positive warnings", n)
	}
}
