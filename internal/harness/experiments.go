package harness

import (
	"time"

	"rcuarray/internal/comm"
	"rcuarray/internal/locale"
	"rcuarray/internal/workload"
)

// AccessMode selects what each indexing operation does.
type AccessMode int

const (
	// AccessStore performs per-op updates — the paper's Figure 2 workload.
	AccessStore AccessMode = iota
	// AccessLoad performs per-op reads through the plain read path.
	AccessLoad
	// AccessLoadPinned performs reads through one pinned read session per
	// task (the amortized read path); kinds without session support fall
	// back to per-op reads.
	AccessLoadPinned
)

// String names the mode for figure labels.
func (m AccessMode) String() string {
	switch m {
	case AccessLoad:
		return "load"
	case AccessLoadPinned:
		return "load-pinned"
	default:
		return "store"
	}
}

// IndexingConfig parameterizes the Figure 2 family: every task performs
// OpsPerTask update operations against indices drawn from Pattern.
type IndexingConfig struct {
	// Kinds are the arrays to sweep (columns of the figure).
	Kinds []Kind
	// Locales are the cluster sizes to sweep (the x axis).
	Locales []int
	// TasksPerLocale is the per-locale task count (44 in the paper).
	TasksPerLocale int
	// OpsPerTask is the operation count per task (1024 for Figures
	// 2a/2b, 1M for 2c/2d).
	OpsPerTask int
	// Capacity is the array size in elements during the run.
	Capacity int
	// BlockSize is the RCUArray block size in elements.
	BlockSize int
	// Pattern selects random or sequential indexing.
	Pattern workload.Pattern
	// Access selects store (default, the paper's workload), load, or
	// pinned-session load operations.
	Access AccessMode
	// RemoteLatency models the network (one-way per remote op).
	RemoteLatency time.Duration
	// CheckpointEvery inserts a QSBR checkpoint after every k operations
	// on QSBR arrays; 0 disables checkpoints entirely (the paper's
	// QSBRArray "does not make use of checkpoints and represents the
	// best case").
	CheckpointEvery int
	// Seed makes index streams reproducible.
	Seed uint64
	// Repetitions runs each point this many times and keeps the best,
	// suppressing scheduler noise on busy hosts. Default 1.
	Repetitions int
	// Disjoint partitions the capacity into one subrange per task, so no
	// two tasks touch the same element. The paper's benchmarks overlap
	// (false); correctness tests under the race detector set true,
	// because concurrent same-element stores are plain-memory races by
	// the array's semantics.
	Disjoint bool
}

func (c IndexingConfig) withDefaults() IndexingConfig {
	if len(c.Kinds) == 0 {
		c.Kinds = []Kind{KindEBR, KindQSBR, KindChapel, KindSync}
	}
	if len(c.Locales) == 0 {
		c.Locales = []int{1, 2, 4, 8}
	}
	if c.TasksPerLocale <= 0 {
		c.TasksPerLocale = 4
	}
	if c.OpsPerTask <= 0 {
		c.OpsPerTask = 1024
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 1024
	}
	if c.Capacity <= 0 {
		c.Capacity = 64 * c.BlockSize
	}
	if c.Seed == 0 {
		c.Seed = 0xC0DE
	}
	return c
}

// RunIndexing reproduces one of Figures 2a–2d.
func RunIndexing(cfg IndexingConfig) Result {
	cfg = cfg.withDefaults()
	res := Result{
		Title:  "Indexing (" + cfg.Pattern.String() + ")",
		XLabel: "locales",
		YLabel: "update operations per second (total)",
	}
	for _, k := range cfg.Kinds {
		s := Series{Label: k.String()}
		for _, nl := range cfg.Locales {
			s.Points = append(s.Points, Point{
				X: nl,
				OpsPerSec: bestOf(cfg.Repetitions, func() float64 {
					return runIndexingOnce(cfg, k, nl)
				}),
			})
		}
		res.Series = append(res.Series, s)
	}
	return res
}

// bestOf runs fn reps times (minimum once) and returns the maximum — the
// standard way to report throughput unaffected by unrelated scheduler noise.
func bestOf(reps int, fn func() float64) float64 {
	best := fn()
	for i := 1; i < reps; i++ {
		if v := fn(); v > best {
			best = v
		}
	}
	return best
}

func runIndexingOnce(cfg IndexingConfig, k Kind, numLocales int) float64 {
	c := locale.NewCluster(locale.Config{
		Locales:          numLocales,
		WorkersPerLocale: cfg.TasksPerLocale,
		Comm:             comm.Config{RemoteLatency: cfg.RemoteLatency},
	})
	defer c.Shutdown()

	var elapsed time.Duration
	c.Run(func(task *locale.Task) {
		tgt := BuildTarget(task, k, cfg.BlockSize, cfg.Capacity)
		start := time.Now()
		task.Coforall(func(sub *locale.Task) {
			sub.ForAllTasks(cfg.TasksPerLocale, func(tt *locale.Task, id int) {
				seed := cfg.Seed ^ uint64(tt.Here().ID())<<32 ^ uint64(id)
				lo, hi := 0, cfg.Capacity
				if cfg.Disjoint {
					slot := tt.Here().ID()*cfg.TasksPerLocale + id
					span := cfg.Capacity / (numLocales * cfg.TasksPerLocale)
					if span == 0 {
						span = 1
					}
					lo = (slot * span) % cfg.Capacity
					hi = lo + span
				}
				stream := workload.NewIndexStreamRange(cfg.Pattern, seed, lo, hi)
				ckpt := cfg.CheckpointEvery
				useCkpt := ckpt > 0 && k.IsQSBR()
				var sink int64
				switch cfg.Access {
				case AccessLoadPinned:
					// One pinned session per task. A QSBR
					// checkpoint invalidates session state
					// like any cached reference, so the
					// session is cycled around it.
					sess := OpenReadSession(tgt, tt)
					for op := 0; op < cfg.OpsPerTask; op++ {
						sink += sess.Load(stream.Next())
						if useCkpt && (op+1)%ckpt == 0 {
							sess.Close()
							tt.Checkpoint()
							sess = OpenReadSession(tgt, tt)
						}
					}
					sess.Close()
				case AccessLoad:
					for op := 0; op < cfg.OpsPerTask; op++ {
						sink += tgt.Load(tt, stream.Next())
						if useCkpt && (op+1)%ckpt == 0 {
							tt.Checkpoint()
						}
					}
				default:
					for op := 0; op < cfg.OpsPerTask; op++ {
						tgt.Store(tt, stream.Next(), int64(op))
						if useCkpt && (op+1)%ckpt == 0 {
							tt.Checkpoint()
						}
					}
				}
				_ = sink
			})
		})
		elapsed = time.Since(start)
	})

	totalOps := float64(numLocales) * float64(cfg.TasksPerLocale) * float64(cfg.OpsPerTask)
	return totalOps / elapsed.Seconds()
}

// ResizeConfig parameterizes Figure 3: grow an array from zero to
// Resizes*Increment elements in Increment steps.
type ResizeConfig struct {
	Kinds         []Kind
	Locales       []int
	Increment     int // elements per resize (1024 in the paper)
	Resizes       int // number of resizes (1024 in the paper)
	BlockSize     int
	RemoteLatency time.Duration
	Repetitions   int
}

func (c ResizeConfig) withDefaults() ResizeConfig {
	if len(c.Kinds) == 0 {
		c.Kinds = []Kind{KindEBR, KindQSBR, KindChapel}
	}
	if len(c.Locales) == 0 {
		c.Locales = []int{1, 2, 4, 8}
	}
	if c.Increment <= 0 {
		c.Increment = 1024
	}
	if c.Resizes <= 0 {
		c.Resizes = 64
	}
	if c.BlockSize <= 0 {
		c.BlockSize = c.Increment
	}
	return c
}

// RunResize reproduces Figure 3. The y value is resize operations per
// second (the paper plots total time; the reciprocal carries the same
// shape with "higher is better" orientation like its other figures).
func RunResize(cfg ResizeConfig) Result {
	cfg = cfg.withDefaults()
	res := Result{
		Title:  "Resize",
		XLabel: "locales",
		YLabel: "resize operations per second",
	}
	for _, k := range cfg.Kinds {
		s := Series{Label: k.String()}
		for _, nl := range cfg.Locales {
			s.Points = append(s.Points, Point{X: nl, OpsPerSec: bestOf(cfg.Repetitions, func() float64 {
				return runResizeOnce(cfg, k, nl)
			})})
		}
		res.Series = append(res.Series, s)
	}
	return res
}

func runResizeOnce(cfg ResizeConfig, k Kind, numLocales int) float64 {
	c := locale.NewCluster(locale.Config{
		Locales:          numLocales,
		WorkersPerLocale: 2,
		Comm:             comm.Config{RemoteLatency: cfg.RemoteLatency},
	})
	defer c.Shutdown()

	var elapsed time.Duration
	c.Run(func(task *locale.Task) {
		// Start from zero capacity, as the paper's benchmark does. The
		// baselines cannot build with zero elements, so they start at
		// one increment and do one fewer resize; with ≥64 resizes the
		// skew is under 2%.
		resizes := cfg.Resizes
		initial := 0
		if k == KindChapel || k == KindSync || k == KindRW {
			initial = cfg.Increment
			resizes--
		}
		tgt := BuildTarget(task, k, cfg.BlockSize, initial)
		start := time.Now()
		for i := 0; i < resizes; i++ {
			tgt.Grow(task, cfg.Increment)
		}
		elapsed = time.Since(start)
	})
	return float64(cfg.Resizes) / elapsed.Seconds()
}

// CheckpointConfig parameterizes Figure 4: the overhead of QSBR checkpoint
// frequency at a single locale, with the EBR read-side as a baseline.
type CheckpointConfig struct {
	TasksPerLocale int
	OpsPerTask     int
	Capacity       int
	BlockSize      int
	// Frequencies are the ops-per-checkpoint values to sweep (the x
	// axis). 0 means "no checkpoints" and is plotted at x = OpsPerTask.
	Frequencies []int
	// IncludeEBRBaseline adds the EBRArray series measured on the same
	// workload (the paper reuses its Figure 2d EBR numbers).
	IncludeEBRBaseline bool
	RemoteLatency      time.Duration
	Seed               uint64
	Repetitions        int
	Disjoint           bool
}

func (c CheckpointConfig) withDefaults() CheckpointConfig {
	if c.TasksPerLocale <= 0 {
		c.TasksPerLocale = 4
	}
	if c.OpsPerTask <= 0 {
		c.OpsPerTask = 1 << 16
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 1024
	}
	if c.Capacity <= 0 {
		c.Capacity = 64 * c.BlockSize
	}
	if len(c.Frequencies) == 0 {
		c.Frequencies = []int{1, 4, 16, 64, 256, 1024}
	}
	return c
}

// RunCheckpoint reproduces Figure 4.
func RunCheckpoint(cfg CheckpointConfig) Result {
	cfg = cfg.withDefaults()
	res := Result{
		Title:  "QSBR checkpoint overhead (1 locale)",
		XLabel: "ops/checkpoint",
		YLabel: "update operations per second (total)",
	}
	base := IndexingConfig{
		Locales:        []int{1},
		TasksPerLocale: cfg.TasksPerLocale,
		OpsPerTask:     cfg.OpsPerTask,
		Capacity:       cfg.Capacity,
		BlockSize:      cfg.BlockSize,
		Pattern:        workload.Sequential,
		RemoteLatency:  cfg.RemoteLatency,
		Seed:           cfg.Seed,
		Disjoint:       cfg.Disjoint,
	}

	qs := Series{Label: "QSBR"}
	for _, freq := range cfg.Frequencies {
		c := base
		c.CheckpointEvery = freq
		x := freq
		if freq == 0 {
			x = cfg.OpsPerTask
		}
		qs.Points = append(qs.Points, Point{X: x, OpsPerSec: bestOf(cfg.Repetitions, func() float64 {
			return runIndexingOnce(c.withDefaults(), KindQSBR, 1)
		})})
	}
	res.Series = append(res.Series, qs)

	if cfg.IncludeEBRBaseline {
		ebrVal := bestOf(cfg.Repetitions, func() float64 {
			return runIndexingOnce(base.withDefaults(), KindEBR, 1)
		})
		es := Series{Label: "EBR"}
		for _, p := range qs.Points {
			es.Points = append(es.Points, Point{X: p.X, OpsPerSec: ebrVal})
		}
		res.Series = append(res.Series, es)
	}
	return res
}
