package harness

import (
	"strings"
	"testing"

	"rcuarray/internal/locale"
	"rcuarray/internal/workload"
)

func TestKindStringsAndParse(t *testing.T) {
	for _, k := range []Kind{KindEBR, KindQSBR, KindChapel, KindSync, KindRW} {
		parsed, err := ParseKind(k.String())
		if err != nil || parsed != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), parsed, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("ParseKind accepted bogus label")
	}
	if !KindQSBR.IsQSBR() || KindEBR.IsQSBR() {
		t.Fatal("IsQSBR misclassifies")
	}
}

func TestBuildTargetAllKinds(t *testing.T) {
	c := locale.NewCluster(locale.Config{Locales: 2, WorkersPerLocale: 2})
	defer c.Shutdown()
	c.Run(func(task *locale.Task) {
		for _, k := range []Kind{KindEBR, KindQSBR, KindChapel, KindSync, KindRW} {
			tgt := BuildTarget(task, k, 8, 16)
			if tgt.Name() != k.String() {
				t.Errorf("Name = %q, want %q", tgt.Name(), k.String())
			}
			if got := tgt.Len(task); got != 16 {
				t.Errorf("%v Len = %d, want 16", k, got)
			}
			tgt.Store(task, 3, 99)
			if got := tgt.Load(task, 3); got != 99 {
				t.Errorf("%v round trip = %d", k, got)
			}
			tgt.Grow(task, 8)
			if got := tgt.Len(task); got != 24 {
				t.Errorf("%v Len after Grow = %d, want 24", k, got)
			}
		}
	})
}

func tinyIndexing(pattern workload.Pattern) IndexingConfig {
	return IndexingConfig{
		Kinds:          []Kind{KindQSBR, KindChapel},
		Locales:        []int{1, 2},
		TasksPerLocale: 2,
		OpsPerTask:     256,
		Capacity:       256,
		BlockSize:      32,
		Pattern:        pattern,
		Seed:           7,
		Disjoint:       true, // race-detector-clean: one subrange per task
	}
}

func TestRunIndexingProducesAllPoints(t *testing.T) {
	res := RunIndexing(tinyIndexing(workload.Random))
	if len(res.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) != 2 {
			t.Fatalf("%s points = %d, want 2", s.Label, len(s.Points))
		}
		for _, p := range s.Points {
			if p.OpsPerSec <= 0 {
				t.Fatalf("%s at %d locales: %.1f ops/s", s.Label, p.X, p.OpsPerSec)
			}
		}
	}
}

func TestRunIndexingSequential(t *testing.T) {
	res := RunIndexing(tinyIndexing(workload.Sequential))
	if got := res.SeriesByLabel("QSBRArray"); got == nil || got.At(1) <= 0 {
		t.Fatal("sequential indexing produced no QSBR throughput")
	}
}

func TestRunIndexingWithCheckpoints(t *testing.T) {
	cfg := tinyIndexing(workload.Sequential)
	cfg.Kinds = []Kind{KindQSBR}
	cfg.CheckpointEvery = 16
	res := RunIndexing(cfg)
	if res.Series[0].At(1) <= 0 {
		t.Fatal("checkpointing run produced no throughput")
	}
}

func TestRunResize(t *testing.T) {
	res := RunResize(ResizeConfig{
		Kinds:     []Kind{KindEBR, KindQSBR, KindChapel},
		Locales:   []int{1, 2},
		Increment: 64,
		Resizes:   16,
		BlockSize: 64,
	})
	if len(res.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(res.Series))
	}
	for _, s := range res.Series {
		for _, p := range s.Points {
			if p.OpsPerSec <= 0 {
				t.Fatalf("%s at %d locales: %.1f resizes/s", s.Label, p.X, p.OpsPerSec)
			}
		}
	}
}

func TestRunCheckpoint(t *testing.T) {
	res := RunCheckpoint(CheckpointConfig{
		TasksPerLocale:     2,
		OpsPerTask:         512,
		Capacity:           256,
		BlockSize:          32,
		Frequencies:        []int{1, 16, 0},
		IncludeEBRBaseline: true,
		Seed:               3,
		Disjoint:           true,
	})
	qs := res.SeriesByLabel("QSBR")
	es := res.SeriesByLabel("EBR")
	if qs == nil || es == nil {
		t.Fatal("missing series")
	}
	if len(qs.Points) != 3 {
		t.Fatalf("QSBR points = %d, want 3", len(qs.Points))
	}
	// Frequency 0 is plotted at x = OpsPerTask.
	if qs.At(512) <= 0 {
		t.Fatal("no-checkpoint point missing")
	}
	// The EBR baseline is a horizontal line.
	if es.At(1) != es.At(16) {
		t.Fatal("EBR baseline not constant")
	}
}

func TestResultFormatting(t *testing.T) {
	res := Result{
		Title:  "T",
		XLabel: "locales",
		YLabel: "ops/s",
		Series: []Series{
			{Label: "A", Points: []Point{{1, 1500}, {2, 3e6}}},
			{Label: "B", Points: []Point{{1, 2.5e9}}},
		},
	}
	var sb strings.Builder
	res.Format(&sb)
	out := sb.String()
	for _, want := range []string{"# T", "locales", "A", "B", "1.50k", "3.00M", "2.50G", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	res.FormatCSV(&sb)
	csv := sb.String()
	if !strings.HasPrefix(csv, "locales,A,B\n") {
		t.Errorf("CSV header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, "1,1500.0,2500000000.0") {
		t.Errorf("CSV row wrong:\n%s", csv)
	}
}

func TestResultRatio(t *testing.T) {
	res := Result{Series: []Series{
		{Label: "A", Points: []Point{{1, 400}}},
		{Label: "B", Points: []Point{{1, 100}}},
	}}
	if got := res.Ratio("A", "B", 1); got != 4 {
		t.Fatalf("Ratio = %v, want 4", got)
	}
	if got := res.Ratio("A", "C", 1); got != 0 {
		t.Fatalf("Ratio with missing series = %v, want 0", got)
	}
	if got := res.Ratio("B", "A", 2); got != 0 {
		t.Fatalf("Ratio at missing x = %v, want 0", got)
	}
}
