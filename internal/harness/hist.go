package harness

import (
	"fmt"
	"math/bits"
	"time"
)

// Histogram is a log-scale latency histogram: bucket i counts samples with
// ceil(log2(ns)) == i. It is single-writer during collection (one per task)
// and merged afterwards, so no synchronization is needed.
type Histogram struct {
	buckets [64]uint64
	count   uint64
	max     time.Duration
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketOf(d)]++
	h.count++
	if d > h.max {
		h.max = d
	}
}

func bucketOf(d time.Duration) int {
	ns := uint64(d.Nanoseconds())
	if ns == 0 {
		return 0
	}
	return bits.Len64(ns) - 1
}

// Merge folds o into h.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
	if o.max > h.max {
		h.max = o.max
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Max returns the largest recorded sample.
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns an upper bound on the q-quantile (0 < q <= 1), resolved
// to the histogram's power-of-two bucket granularity.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= target {
			// Upper edge of bucket i: 2^(i+1)-1 ns.
			if i >= 62 {
				return h.max
			}
			upper := time.Duration((uint64(1) << (i + 1)) - 1)
			if upper > h.max {
				return h.max
			}
			return upper
		}
	}
	return h.max
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d p50<=%v p99<=%v max=%v",
		h.count, h.Quantile(0.50), h.Quantile(0.99), h.max)
}
