package harness

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"rcuarray/internal/workload"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	h.Record(100 * time.Nanosecond)
	h.Record(200 * time.Nanosecond)
	h.Record(10 * time.Microsecond)
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Max() != 10*time.Microsecond {
		t.Fatalf("Max = %v", h.Max())
	}
	// p50 falls in the 128–255ns bucket.
	if q := h.Quantile(0.5); q < 100*time.Nanosecond || q > 300*time.Nanosecond {
		t.Fatalf("p50 = %v", q)
	}
	// p100 == max.
	if q := h.Quantile(1.0); q != h.Max() {
		t.Fatalf("p100 = %v, want %v", q, h.Max())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-time.Second)
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatalf("negative sample mishandled: count=%d max=%v", h.Count(), h.Max())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Record(time.Microsecond)
	b.Record(time.Millisecond)
	b.Record(2 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 3 {
		t.Fatalf("merged Count = %d", a.Count())
	}
	if a.Max() != 2*time.Millisecond {
		t.Fatalf("merged Max = %v", a.Max())
	}
	if !strings.Contains(a.String(), "n=3") {
		t.Fatalf("String = %q", a.String())
	}
}

// Property: the histogram quantile is always an upper bound on the exact
// sample quantile, and within one power of two of it.
func TestHistogramQuantileBoundProperty(t *testing.T) {
	f := func(raw []uint32, qSeed uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		samples := make([]time.Duration, len(raw))
		for i, r := range raw {
			d := time.Duration(r % 10_000_000) // up to 10ms
			samples[i] = d
			h.Record(d)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		q := 0.01 + float64(qSeed%99)/100.0
		exactIdx := int(q*float64(len(samples))) - 1
		if exactIdx < 0 {
			exactIdx = 0
		}
		exact := samples[exactIdx]
		got := h.Quantile(q)
		if got < exact {
			return false // must be an upper bound
		}
		if got > h.Max() {
			return false // never beyond the observed maximum
		}
		// Within one power-of-two bucket of the exact value, unless
		// clamped to the maximum.
		return got <= 2*exact+1 || got == h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRunLatencyUnderResize(t *testing.T) {
	res := RunLatencyUnderResize(LatencyConfig{
		Kinds:          []Kind{KindQSBR, KindSync},
		Locales:        2,
		TasksPerLocale: 2,
		OpsPerTask:     2048,
		Capacity:       1024,
		BlockSize:      128,
		SampleEvery:    8,
		GrowEvery:      time.Millisecond,
		Seed:           5,
	})
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Hist.Count() == 0 {
			t.Fatalf("%v: no latency samples", row.Kind)
		}
		if row.Resizes == 0 {
			t.Fatalf("%v: grower made no progress", row.Kind)
		}
		if row.OpsPerSec <= 0 {
			t.Fatalf("%v: no throughput", row.Kind)
		}
	}
	var sb strings.Builder
	res.Format(&sb)
	if !strings.Contains(sb.String(), "p99") || !strings.Contains(sb.String(), "QSBRArray") {
		t.Fatalf("Format output missing columns:\n%s", sb.String())
	}
}

func TestLatencyExcludesChapel(t *testing.T) {
	res := RunLatencyUnderResize(LatencyConfig{
		Kinds:          []Kind{KindChapel, KindEBR},
		Locales:        1,
		TasksPerLocale: 1,
		OpsPerTask:     256,
		Capacity:       256,
		BlockSize:      64,
		GrowEvery:      time.Millisecond,
	})
	if len(res.Rows) != 1 || res.Rows[0].Kind != KindEBR {
		t.Fatalf("ChapelArray not excluded: %+v", res.Rows)
	}
}

// Keep the workload import anchored (patterns used by latency config).
var _ = workload.Random
