package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"rcuarray/internal/core"
	"rcuarray/internal/locale"
	"rcuarray/internal/obs"
	"rcuarray/internal/workload"
)

// InstallBenchConfig parameterizes the PR 6 resize-install experiment. It
// answers two acceptance questions:
//
//  1. With the incremental per-region install, what does a resize's install
//     phase (publication + grace period) cost under a live read storm? The
//     headline is the core_resize_install_ns p99, gated in CI against 1/5 of
//     the PR 5 baseline's monolithic install.
//  2. Does the hierarchical (combining-tree) grace-period domain beat the
//     flat per-locale layout where the hierarchy predicts — no slower at one
//     locale, faster once several locales must rendezvous per resize?
type InstallBenchConfig struct {
	// Locales is the cluster size for the install-latency measurement.
	Locales int
	// TasksPerLocale is the background reader count per locale.
	TasksPerLocale int
	// Grows is the number of measured resizes.
	Grows int
	// GrowBlocks is the width of each measured resize in blocks. Anything
	// above one exercises the boundary-region flip and multi-region
	// directory publication paths.
	GrowBlocks int
	// BlockSize is the array block size in elements.
	BlockSize int
	// RegionBlocks is the region width in blocks (0 = core default).
	RegionBlocks int
	// Capacity is the initial readable region in elements.
	Capacity int
	// SyncLocales is the locale sweep for the tree-vs-flat Synchronize
	// comparison.
	SyncLocales []int
	// SyncGrows is the resize count per arm of that comparison.
	SyncGrows int
	// Seed makes reader index streams reproducible.
	Seed uint64
	// Repetitions is the rep count; the best rep (lowest install p99,
	// lowest Synchronize cost) is kept, matching the harness convention for
	// shared-hardware noise.
	Repetitions int
}

func (c InstallBenchConfig) withDefaults() InstallBenchConfig {
	if c.Locales <= 0 {
		c.Locales = 2
	}
	if c.TasksPerLocale <= 0 {
		c.TasksPerLocale = 2
	}
	if c.Grows <= 0 {
		c.Grows = 32
	}
	if c.GrowBlocks <= 0 {
		c.GrowBlocks = 12
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 1024
	}
	if c.Capacity <= 0 {
		c.Capacity = 16 * c.BlockSize
	}
	if len(c.SyncLocales) == 0 {
		c.SyncLocales = []int{1, 4}
	}
	if c.SyncGrows <= 0 {
		c.SyncGrows = 64
	}
	if c.Seed == 0 {
		c.Seed = 0xC0DE
	}
	if c.Repetitions <= 0 {
		c.Repetitions = 3
	}
	return c
}

// SyncScalePoint is one locale count of the tree-vs-flat comparison. The
// metric is Synchronize nanoseconds per resize — the summed grace-period
// durations (ebr_grace_ns) divided by the resize count — so the flat arm is
// charged for every per-locale rendezvous a resize performs while the tree
// arm is charged for its single hierarchical fold.
type SyncScalePoint struct {
	Locales        int     `json:"locales"`
	FlatNsPerGrow  float64 `json:"flat_sync_ns_per_grow"`
	TreeNsPerGrow  float64 `json:"tree_sync_ns_per_grow"`
	FlatGraceCount uint64  `json:"flat_grace_count"`
	TreeGraceCount uint64  `json:"tree_grace_count"`
	// Speedup is flat/tree; >1 means the tree rendezvous is cheaper.
	Speedup float64 `json:"speedup"`
}

// InstallBenchResult is the experiment's JSON artifact (BENCH_PR6.json).
type InstallBenchResult struct {
	Title          string `json:"title"`
	Locales        int    `json:"locales"`
	TasksPerLocale int    `json:"tasks_per_locale"`
	Grows          int    `json:"grows"`
	GrowBlocks     int    `json:"grow_blocks"`
	RegionBlocks   int    `json:"region_blocks"`

	// Install-phase distribution (core_resize_install_ns) of the kept rep.
	InstallP50Nanos uint64 `json:"install_p50_ns"`
	InstallP99Nanos uint64 `json:"install_p99_ns"`
	InstallMaxNanos uint64 `json:"install_max_ns"`
	InstallCount    uint64 `json:"install_count"`
	// Boundary-region flip distribution (core_region_flip_ns) and count.
	RegionFlipP99Nanos uint64 `json:"region_flip_p99_ns"`
	RegionFlips        uint64 `json:"region_flips"`

	// BaselineP99Nanos is the PR 5 monolithic-install p99 this run is gated
	// against (copied in by the caller; zero when ungated).
	BaselineP99Nanos uint64 `json:"baseline_p99_ns,omitempty"`

	SyncScale []SyncScalePoint `json:"sync_scale"`

	// Snapshot is the kept install rep's full registry snapshot.
	Snapshot obs.Snapshot `json:"snapshot"`
}

// RunInstallBench measures the incremental install latency and the
// tree-vs-flat Synchronize scaling. Observability is forced on (the
// histograms are the measurement) and restored on return.
func RunInstallBench(cfg InstallBenchConfig) InstallBenchResult {
	cfg = cfg.withDefaults()
	was := obs.On()
	obs.SetEnabled(true)
	defer obs.SetEnabled(was)

	res := InstallBenchResult{
		Title:          "PR 6: incremental per-region install latency + tree-vs-flat Synchronize scaling",
		Locales:        cfg.Locales,
		TasksPerLocale: cfg.TasksPerLocale,
		Grows:          cfg.Grows,
		GrowBlocks:     cfg.GrowBlocks,
		RegionBlocks:   cfg.RegionBlocks,
	}
	if res.RegionBlocks <= 0 {
		res.RegionBlocks = core.DefaultRegionBlocks
	}

	// Part 1: install latency under a read storm; keep the rep with the
	// lowest install p99 (ties: lower max).
	var best obs.Snapshot
	bestOK := false
	for rep := 0; rep < cfg.Repetitions; rep++ {
		snap := runInstallOnce(cfg)
		h, ok := snap.Histograms["core_resize_install_ns"]
		if !ok {
			continue
		}
		b := best.Histograms["core_resize_install_ns"]
		if !bestOK || h.P99 < b.P99 || (h.P99 == b.P99 && h.MaxNanos < b.MaxNanos) {
			best, bestOK = snap, true
		}
	}
	if h, ok := best.Histograms["core_resize_install_ns"]; ok {
		res.InstallP50Nanos = h.P50
		res.InstallP99Nanos = h.P99
		res.InstallMaxNanos = h.MaxNanos
		res.InstallCount = h.Count
	}
	if h, ok := best.Histograms["core_region_flip_ns"]; ok {
		res.RegionFlipP99Nanos = h.P99
	}
	res.RegionFlips = best.Counters["core_region_flips_total"]
	res.Snapshot = best

	// Part 2: tree-vs-flat Synchronize cost per resize across the locale
	// sweep, best (lowest) of reps per arm.
	for _, l := range cfg.SyncLocales {
		pt := SyncScalePoint{Locales: l}
		for rep := 0; rep < cfg.Repetitions; rep++ {
			fNs, fCnt := runSyncArm(cfg, l, false)
			tNs, tCnt := runSyncArm(cfg, l, true)
			if rep == 0 || fNs < pt.FlatNsPerGrow {
				pt.FlatNsPerGrow, pt.FlatGraceCount = fNs, fCnt
			}
			if rep == 0 || tNs < pt.TreeNsPerGrow {
				pt.TreeNsPerGrow, pt.TreeGraceCount = tNs, tCnt
			}
		}
		if pt.TreeNsPerGrow > 0 {
			pt.Speedup = pt.FlatNsPerGrow / pt.TreeNsPerGrow
		}
		res.SyncScale = append(res.SyncScale, pt)
	}
	return res
}

// runInstallOnce runs one install-latency rep: a fresh cluster, background
// readers hammering the initial capacity, and the configured resize sequence
// on the main task. Returns the cluster's metric snapshot.
func runInstallOnce(cfg InstallBenchConfig) obs.Snapshot {
	c := locale.NewCluster(locale.Config{
		Locales:          cfg.Locales,
		WorkersPerLocale: cfg.TasksPerLocale,
	})
	defer c.Shutdown()

	c.Run(func(task *locale.Task) {
		a := core.New[int64](task, core.Options{
			BlockSize:       cfg.BlockSize,
			Variant:         core.VariantEBR,
			InitialCapacity: cfg.Capacity,
			RegionBlocks:    cfg.RegionBlocks,
		})

		stop := make(chan struct{})
		readersDone := make(chan struct{})
		go c.Run(func(rt *locale.Task) {
			defer close(readersDone)
			rt.Coforall(func(sub *locale.Task) {
				sub.ForAllTasks(cfg.TasksPerLocale, func(tt *locale.Task, id int) {
					seed := cfg.Seed ^ uint64(tt.Here().ID())<<32 ^ uint64(id)
					stream := workload.NewIndexStreamRange(workload.Random, seed, 0, cfg.Capacity)
					var sink int64
					for {
						select {
						case <-stop:
							_ = sink
							return
						default:
						}
						sink += a.Load(tt, stream.Next())
						// Yield every op: the readers are background
						// pressure on the grace-period protocol, not the
						// measurement, and a spinning loop on an
						// oversubscribed (or single-core) host starves the
						// resize's cross-locale tasks of workers — the
						// measurement then reports scheduler preemption
						// quanta, not install cost.
						runtime.Gosched()
					}
				})
			})
		})

		for i := 0; i < cfg.Grows; i++ {
			a.Grow(task, cfg.GrowBlocks*cfg.BlockSize)
		}
		close(stop)
		<-readersDone
		a.Destroy(task)
	})
	return c.Obs().Snapshot()
}

// runSyncArm runs one arm of the Synchronize comparison at the given locale
// count: readers pin the grace-period protocol while the main task resizes
// SyncGrows times. Returns (grace ns per resize, grace count) from the
// arm's ebr_grace_ns histogram.
func runSyncArm(cfg InstallBenchConfig, locales int, tree bool) (float64, uint64) {
	c := locale.NewCluster(locale.Config{
		Locales:          locales,
		WorkersPerLocale: cfg.TasksPerLocale,
	})
	defer c.Shutdown()

	c.Run(func(task *locale.Task) {
		a := core.New[int64](task, core.Options{
			BlockSize:       cfg.BlockSize,
			Variant:         core.VariantEBR,
			InitialCapacity: cfg.Capacity,
			RegionBlocks:    cfg.RegionBlocks,
			TreeEBR:         tree,
		})

		stop := make(chan struct{})
		readersDone := make(chan struct{})
		go c.Run(func(rt *locale.Task) {
			defer close(readersDone)
			rt.Coforall(func(sub *locale.Task) {
				sub.ForAllTasks(cfg.TasksPerLocale, func(tt *locale.Task, id int) {
					seed := cfg.Seed ^ uint64(tt.Here().ID())<<32 ^ uint64(id)
					stream := workload.NewIndexStreamRange(workload.Random, seed, 0, cfg.Capacity)
					var sink int64
					for {
						select {
						case <-stop:
							_ = sink
							return
						default:
						}
						sink += a.Load(tt, stream.Next())
						// Yield every op: the readers are background
						// pressure on the grace-period protocol, not the
						// measurement, and a spinning loop on an
						// oversubscribed (or single-core) host starves the
						// resize's cross-locale tasks of workers — the
						// measurement then reports scheduler preemption
						// quanta, not install cost.
						runtime.Gosched()
					}
				})
			})
		})

		// The graces charged to this arm start here: New's initial grows ran
		// before any reader existed, and single-block grows keep the
		// publication work identical between arms so ebr_grace_ns isolates
		// the rendezvous itself.
		for i := 0; i < cfg.SyncGrows; i++ {
			a.Grow(task, cfg.BlockSize)
		}
		close(stop)
		<-readersDone
		a.Destroy(task)
	})

	snap := c.Obs().Snapshot()
	h := snap.Histograms["ebr_grace_ns"]
	if h.Count == 0 {
		return 0, 0
	}
	return float64(h.SumNanos) / float64(cfg.SyncGrows), h.Count
}

// EncodeJSON writes the result as indented JSON (the BENCH_PR6.json shape).
func (r InstallBenchResult) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Format renders a human-readable summary.
func (r InstallBenchResult) Format(w io.Writer) {
	fmt.Fprintf(w, "%s\n", r.Title)
	fmt.Fprintf(w, "locales=%d readers/locale=%d grows=%d x %d blocks (regions of %d blocks)\n",
		r.Locales, r.TasksPerLocale, r.Grows, r.GrowBlocks, r.RegionBlocks)
	fmt.Fprintf(w, "  install phase: p50=%dns p99=%dns max=%dns over %d installs\n",
		r.InstallP50Nanos, r.InstallP99Nanos, r.InstallMaxNanos, r.InstallCount)
	fmt.Fprintf(w, "  region flips:  %d flips, flip p99=%dns\n", r.RegionFlips, r.RegionFlipP99Nanos)
	if r.BaselineP99Nanos > 0 {
		fmt.Fprintf(w, "  baseline (PR5 monolithic install) p99=%dns -> %.1fx tighter\n",
			r.BaselineP99Nanos, float64(r.BaselineP99Nanos)/float64(r.InstallP99Nanos))
	}
	fmt.Fprintf(w, "  Synchronize, flat vs tree (grace ns per resize, best of reps):\n")
	for _, pt := range r.SyncScale {
		fmt.Fprintf(w, "    %2d locales: flat %10.0f  tree %10.0f  speedup %.2fx\n",
			pt.Locales, pt.FlatNsPerGrow, pt.TreeNsPerGrow, pt.Speedup)
	}
}
