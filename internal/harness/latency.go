package harness

import (
	"fmt"
	"io"
	"sync"
	"time"

	"rcuarray/internal/comm"
	"rcuarray/internal/locale"
	"rcuarray/internal/workload"
)

// LatencyConfig parameterizes the tail-latency experiment: reader tasks
// sample per-operation latency while one structural writer resizes the
// array continuously. This extends the paper's evaluation (which reports
// only throughput): the reason to pay RCU's complexity is precisely that a
// resize does not stall readers, and that shows up in the tail, not the
// mean.
type LatencyConfig struct {
	Kinds          []Kind
	Locales        int
	TasksPerLocale int
	OpsPerTask     int
	Capacity       int
	BlockSize      int
	// SampleEvery measures one op out of this many (timing every op
	// would dominate the op itself). Default 16.
	SampleEvery   int
	GrowEvery     time.Duration // delay between grower resizes; default 500µs
	RemoteLatency time.Duration
	Seed          uint64
}

func (c LatencyConfig) withDefaults() LatencyConfig {
	if len(c.Kinds) == 0 {
		c.Kinds = []Kind{KindEBR, KindQSBR, KindSync, KindRW}
	}
	if c.Locales <= 0 {
		c.Locales = 2
	}
	if c.TasksPerLocale <= 0 {
		c.TasksPerLocale = 2
	}
	if c.OpsPerTask <= 0 {
		c.OpsPerTask = 1 << 14
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 1024
	}
	if c.Capacity <= 0 {
		c.Capacity = 16 * c.BlockSize
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 16
	}
	if c.GrowEvery <= 0 {
		c.GrowEvery = 500 * time.Microsecond
	}
	return c
}

// LatencyRow is one array's measured read-latency distribution under a
// concurrent resize storm.
type LatencyRow struct {
	Kind      Kind
	Hist      Histogram
	Resizes   int
	OpsPerSec float64
}

// LatencyResult holds one run of the tail-latency experiment.
type LatencyResult struct {
	Title string
	Rows  []LatencyRow
}

// Format writes the distribution table.
func (r LatencyResult) Format(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", r.Title)
	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s %10s %9s\n",
		"array", "p50", "p90", "p99", "p99.9", "max", "resizes")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %10v %10v %10v %10v %10v %9d\n",
			row.Kind,
			row.Hist.Quantile(0.50), row.Hist.Quantile(0.90),
			row.Hist.Quantile(0.99), row.Hist.Quantile(0.999),
			row.Hist.Max(), row.Resizes)
	}
	fmt.Fprintln(w, "(read latency while a concurrent writer resizes continuously)")
}

// RunLatencyUnderResize measures per-read latency percentiles for each kind
// while a dedicated task keeps growing the array. ChapelArray is excluded:
// resizing it concurrently with reads is unsafe by construction.
func RunLatencyUnderResize(cfg LatencyConfig) LatencyResult {
	cfg = cfg.withDefaults()
	res := LatencyResult{Title: fmt.Sprintf(
		"Read latency under resize (%d locales x %d tasks)", cfg.Locales, cfg.TasksPerLocale)}
	for _, k := range cfg.Kinds {
		if k == KindChapel {
			continue
		}
		res.Rows = append(res.Rows, runLatencyOnce(cfg, k))
	}
	return res
}

func runLatencyOnce(cfg LatencyConfig, k Kind) LatencyRow {
	c := locale.NewCluster(locale.Config{
		Locales:          cfg.Locales,
		WorkersPerLocale: cfg.TasksPerLocale + 1, // +1 keeps the grower from displacing readers
		Comm:             comm.Config{RemoteLatency: cfg.RemoteLatency},
	})
	defer c.Shutdown()

	row := LatencyRow{Kind: k}
	var mu sync.Mutex
	c.Run(func(task *locale.Task) {
		tgt := BuildTarget(task, k, cfg.BlockSize, cfg.Capacity)
		done := make(chan struct{})
		start := time.Now()

		// Grower: one dedicated goroutine on the driver's locale.
		growerDone := make(chan struct{})
		go func() {
			defer close(growerDone)
			c.Run(func(gt *locale.Task) {
				for {
					select {
					case <-done:
						return
					default:
					}
					tgt.Grow(gt, cfg.BlockSize)
					mu.Lock()
					row.Resizes++
					mu.Unlock()
					time.Sleep(cfg.GrowEvery)
				}
			})
		}()

		var totalOps int
		task.Coforall(func(sub *locale.Task) {
			sub.ForAllTasks(cfg.TasksPerLocale, func(tt *locale.Task, id int) {
				seed := cfg.Seed ^ uint64(tt.Here().ID())<<32 ^ uint64(id)
				stream := workload.NewIndexStream(workload.Random, seed, cfg.Capacity)
				var h Histogram
				for op := 0; op < cfg.OpsPerTask; op++ {
					idx := stream.Next()
					if op%cfg.SampleEvery == 0 {
						t0 := time.Now()
						_ = tgt.Load(tt, idx)
						h.Record(time.Since(t0))
					} else {
						_ = tgt.Load(tt, idx)
					}
					if k.IsQSBR() && op%256 == 0 {
						tt.Checkpoint()
					}
				}
				mu.Lock()
				row.Hist.Merge(&h)
				totalOps += cfg.OpsPerTask
				mu.Unlock()
			})
		})
		close(done)
		<-growerDone
		row.OpsPerSec = float64(totalOps) / time.Since(start).Seconds()
	})
	return row
}
