package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"rcuarray/internal/core"
	"rcuarray/internal/locale"
	"rcuarray/internal/obs"
	"rcuarray/internal/workload"
)

// ObsOverheadConfig parameterizes the observability A/B experiment: the same
// read-heavy workload (with a concurrent resizer, so the grace-period and
// resize-phase histograms populate) measured once with observability
// disabled and once enabled. The acceptance question is: does the enabled
// read path cost ≤5% throughput, and the disabled path ~0%?
type ObsOverheadConfig struct {
	// Locales is the cluster size.
	Locales int
	// TasksPerLocale is the reader count per locale.
	TasksPerLocale int
	// OpsPerTask is the read count per task.
	OpsPerTask int
	// Capacity is the readable region in elements.
	Capacity int
	// BlockSize is the array block size in elements.
	BlockSize int
	// Pattern selects the index stream.
	Pattern workload.Pattern
	// ResizeInterval paces the concurrent writer (negative disables it).
	ResizeInterval time.Duration
	// Seed makes index streams reproducible.
	Seed uint64
	// Repetitions is the rep count per arm. Arms are interleaved
	// (disabled, enabled, disabled, enabled, ...) and the best rep of each
	// is kept: machine noise on shared hardware drifts over seconds, so
	// running one arm's reps back to back would measure the drift, not the
	// instrumentation.
	Repetitions int
}

func (c ObsOverheadConfig) withDefaults() ObsOverheadConfig {
	if c.Locales <= 0 {
		c.Locales = 2
	}
	if c.TasksPerLocale <= 0 {
		c.TasksPerLocale = 4
	}
	if c.OpsPerTask <= 0 {
		c.OpsPerTask = 1 << 17
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 1024
	}
	if c.Capacity <= 0 {
		c.Capacity = 64 * c.BlockSize
	}
	if c.ResizeInterval == 0 {
		c.ResizeInterval = 200 * time.Microsecond
	}
	if c.Seed == 0 {
		c.Seed = 0xC0DE
	}
	if c.Repetitions <= 0 {
		c.Repetitions = 3
	}
	return c
}

// ObsOverheadResult is the A/B measurement, JSON-encodable for
// BENCH_PR5.json. The enabled run's full metric snapshot is embedded so the
// trajectory file carries the grace-period and resize-phase distributions
// alongside the headline throughput numbers.
type ObsOverheadResult struct {
	Title          string  `json:"title"`
	Locales        int     `json:"locales"`
	TasksPerLocale int     `json:"tasks_per_locale"`
	OpsPerTask     int     `json:"ops_per_task"`
	Pattern        string  `json:"pattern"`
	DisabledReads  float64 `json:"disabled_reads_per_sec"`
	EnabledReads   float64 `json:"enabled_reads_per_sec"`
	// OverheadPct is (disabled - enabled) / disabled * 100; negative means
	// the enabled run was (noise) faster.
	OverheadPct float64 `json:"overhead_pct"`
	// Grace-period distribution from the enabled run's embedded snapshot.
	GraceP50Nanos uint64 `json:"grace_p50_ns"`
	GraceP99Nanos uint64 `json:"grace_p99_ns"`
	GraceCount    uint64 `json:"grace_count"`
	// Snapshot is the enabled run's full registry snapshot.
	Snapshot obs.Snapshot `json:"snapshot"`
}

// RunObsOverhead measures the observability tax with an A/B run. The global
// enable switch is restored to its prior state on return.
func RunObsOverhead(cfg ObsOverheadConfig) ObsOverheadResult {
	cfg = cfg.withDefaults()
	was := obs.On()
	defer obs.SetEnabled(was)

	var disabled, enabled float64
	var snap obs.Snapshot
	for rep := 0; rep < cfg.Repetitions; rep++ {
		if r, _ := runObsOnce(cfg, false); r > disabled {
			disabled = r
		}
		if r, s := runObsOnce(cfg, true); r > enabled {
			enabled, snap = r, s
		}
	}

	res := ObsOverheadResult{
		Title:          "Observability overhead: read throughput disabled vs enabled",
		Locales:        cfg.Locales,
		TasksPerLocale: cfg.TasksPerLocale,
		OpsPerTask:     cfg.OpsPerTask,
		Pattern:        cfg.Pattern.String(),
		DisabledReads:  disabled,
		EnabledReads:   enabled,
		OverheadPct:    (disabled - enabled) / disabled * 100,
		Snapshot:       snap,
	}
	if g, ok := snap.Histograms["ebr_grace_ns"]; ok {
		res.GraceP50Nanos = g.P50
		res.GraceP99Nanos = g.P99
		res.GraceCount = g.Count
	}
	return res
}

// runObsOnce runs one arm: a fresh cluster (its registry starts empty), the
// configured read storm against a striped-EBR array, and a concurrent
// grow/shrink writer that keeps Synchronize — and therefore the grace
// histogram — busy. Returns reads/s and, for the enabled arm, the cluster's
// metric snapshot.
func runObsOnce(cfg ObsOverheadConfig, enabled bool) (float64, obs.Snapshot) {
	obs.SetEnabled(enabled)
	c := locale.NewCluster(locale.Config{
		Locales:          cfg.Locales,
		WorkersPerLocale: cfg.TasksPerLocale,
	})
	defer c.Shutdown()

	var elapsed time.Duration
	c.Run(func(task *locale.Task) {
		a := core.New[int64](task, core.Options{
			BlockSize:       cfg.BlockSize,
			Variant:         core.VariantEBR,
			InitialCapacity: cfg.Capacity,
		})

		stop := make(chan struct{})
		writerDone := make(chan struct{})
		if cfg.ResizeInterval >= 0 {
			go c.Run(func(wt *locale.Task) {
				defer close(writerDone)
				grown := false
				for {
					select {
					case <-stop:
						if grown {
							a.Shrink(wt, cfg.BlockSize)
						}
						return
					default:
					}
					if grown {
						a.Shrink(wt, cfg.BlockSize)
					} else {
						a.Grow(wt, cfg.BlockSize)
					}
					grown = !grown
					time.Sleep(cfg.ResizeInterval)
				}
			})
		} else {
			close(writerDone)
		}

		start := time.Now()
		task.Coforall(func(sub *locale.Task) {
			sub.ForAllTasks(cfg.TasksPerLocale, func(tt *locale.Task, id int) {
				seed := cfg.Seed ^ uint64(tt.Here().ID())<<32 ^ uint64(id)
				stream := workload.NewIndexStreamRange(cfg.Pattern, seed, 0, cfg.Capacity)
				var sink int64
				for op := 0; op < cfg.OpsPerTask; op++ {
					sink += a.Load(tt, stream.Next())
				}
				_ = sink
			})
		})
		elapsed = time.Since(start)
		close(stop)
		<-writerDone
		a.Destroy(task)
	})

	var snap obs.Snapshot
	if enabled {
		snap = c.Obs().Snapshot()
	}
	totalOps := float64(cfg.Locales) * float64(cfg.TasksPerLocale) * float64(cfg.OpsPerTask)
	return totalOps / elapsed.Seconds(), snap
}

// EncodeJSON writes the result as indented JSON (the BENCH_PR5.json shape).
func (r ObsOverheadResult) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Format renders a human-readable summary.
func (r ObsOverheadResult) Format(w io.Writer) {
	fmt.Fprintf(w, "%s\n", r.Title)
	fmt.Fprintf(w, "locales=%d tasks/locale=%d ops/task=%d pattern=%s\n",
		r.Locales, r.TasksPerLocale, r.OpsPerTask, r.Pattern)
	fmt.Fprintf(w, "  disabled: %12.0f reads/s\n", r.DisabledReads)
	fmt.Fprintf(w, "  enabled:  %12.0f reads/s  (%+.2f%% overhead)\n", r.EnabledReads, r.OverheadPct)
	fmt.Fprintf(w, "  grace period: p50=%dns p99=%dns over %d synchronizes\n",
		r.GraceP50Nanos, r.GraceP99Nanos, r.GraceCount)
}
