package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"rcuarray/internal/comm"
	"rcuarray/internal/core"
	"rcuarray/internal/locale"
	"rcuarray/internal/workload"
)

// ReadScalingConfig parameterizes the amortized-read-path A/B experiment:
// read throughput versus tasks per locale, for the flat (paper Algorithm 1)
// EBR layout against the striped layout, each unpinned and pinned, with
// QSBR as the known upper bound — while a concurrent writer continuously
// resizes the array and its per-resize latency (which bounds Synchronize)
// is recorded. The acceptance question is: does striping+pinning beat the
// flat baseline at ≥4 tasks/locale without blowing up resize latency?
type ReadScalingConfig struct {
	// Locales is the cluster size (the sweep is over tasks, not locales).
	Locales int
	// TaskCounts are the tasks-per-locale values to sweep.
	TaskCounts []int
	// OpsPerTask is the read count per task.
	OpsPerTask int
	// Capacity is the readable region in elements; the writer resizes
	// strictly above it so readers never race a shrink of their region.
	Capacity int
	// BlockSize is the array block size in elements.
	BlockSize int
	// Pattern selects the index stream (sequential exercises the
	// location cache; random defeats it).
	Pattern workload.Pattern
	// PinBudget is the pinned sessions' per-window op budget (0 = default).
	PinBudget int
	// ResizeInterval paces the concurrent writer between resizes. The
	// default (100µs) keeps the storm continuous without letting QSBR's
	// deferred reclamation (readers only quiesce at task end) grow
	// unboundedly on slow hosts; set negative to disable the writer.
	ResizeInterval time.Duration
	// RemoteLatency models the interconnect.
	RemoteLatency time.Duration
	// Seed makes index streams reproducible.
	Seed uint64
	// Repetitions keeps the best-throughput rep per point.
	Repetitions int
}

func (c ReadScalingConfig) withDefaults() ReadScalingConfig {
	if c.Locales <= 0 {
		c.Locales = 1
	}
	if len(c.TaskCounts) == 0 {
		c.TaskCounts = []int{1, 2, 4, 8}
	}
	if c.OpsPerTask <= 0 {
		c.OpsPerTask = 1 << 15
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 1024
	}
	if c.Capacity <= 0 {
		c.Capacity = 64 * c.BlockSize
	}
	if c.Seed == 0 {
		c.Seed = 0xC0DE
	}
	if c.ResizeInterval == 0 {
		c.ResizeInterval = 100 * time.Microsecond
	}
	if c.Repetitions <= 0 {
		c.Repetitions = 1
	}
	return c
}

// readScalingVariant is one column of the A/B matrix.
type readScalingVariant struct {
	name   string
	kind   core.Variant
	flat   bool
	pinned bool
}

func readScalingVariants() []readScalingVariant {
	return []readScalingVariant{
		{name: "ebr-flat", kind: core.VariantEBR, flat: true},
		{name: "ebr-striped", kind: core.VariantEBR},
		{name: "ebr-flat-pinned", kind: core.VariantEBR, flat: true, pinned: true},
		{name: "ebr-striped-pinned", kind: core.VariantEBR, pinned: true},
		{name: "qsbr", kind: core.VariantQSBR},
	}
}

// ReadScalingPoint is one (variant, tasks-per-locale) measurement.
type ReadScalingPoint struct {
	Variant        string  `json:"variant"`
	TasksPerLocale int     `json:"tasks_per_locale"`
	ReadsPerSec    float64 `json:"reads_per_sec"`
	// Resize latency of the concurrent writer (one Grow or Shrink of one
	// block, which under EBR includes one Synchronize per locale).
	ResizeMeanMicros float64 `json:"resize_mean_us"`
	ResizeMaxMicros  float64 `json:"resize_max_us"`
	Resizes          uint64  `json:"resizes"`
	// Read-side diagnostics.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	EBRRetries  uint64 `json:"ebr_retries"`
}

// ReadScalingResult is the full A/B sweep, JSON-encodable for
// BENCH_PR<n>.json trajectory files.
type ReadScalingResult struct {
	Title      string             `json:"title"`
	Locales    int                `json:"locales"`
	OpsPerTask int                `json:"ops_per_task"`
	Capacity   int                `json:"capacity"`
	BlockSize  int                `json:"block_size"`
	Pattern    string             `json:"pattern"`
	PinBudget  int                `json:"pin_budget"`
	Points     []ReadScalingPoint `json:"points"`
}

// RunReadScaling runs the sweep.
func RunReadScaling(cfg ReadScalingConfig) ReadScalingResult {
	cfg = cfg.withDefaults()
	res := ReadScalingResult{
		Title:      "Amortized EBR read path: flat vs striped vs pinned",
		Locales:    cfg.Locales,
		OpsPerTask: cfg.OpsPerTask,
		Capacity:   cfg.Capacity,
		BlockSize:  cfg.BlockSize,
		Pattern:    cfg.Pattern.String(),
		PinBudget:  cfg.PinBudget,
	}
	for _, v := range readScalingVariants() {
		for _, tasks := range cfg.TaskCounts {
			best := runReadScalingOnce(cfg, v, tasks)
			for rep := 1; rep < cfg.Repetitions; rep++ {
				if p := runReadScalingOnce(cfg, v, tasks); p.ReadsPerSec > best.ReadsPerSec {
					best = p
				}
			}
			res.Points = append(res.Points, best)
		}
	}
	return res
}

func runReadScalingOnce(cfg ReadScalingConfig, v readScalingVariant, tasks int) ReadScalingPoint {
	c := locale.NewCluster(locale.Config{
		Locales:          cfg.Locales,
		WorkersPerLocale: tasks,
		Comm:             comm.Config{RemoteLatency: cfg.RemoteLatency},
	})
	defer c.Shutdown()

	point := ReadScalingPoint{Variant: v.name, TasksPerLocale: tasks}
	var elapsed time.Duration
	var hits, misses atomic.Uint64

	c.Run(func(task *locale.Task) {
		a := core.New[int64](task, core.Options{
			BlockSize:       cfg.BlockSize,
			Variant:         v.kind,
			InitialCapacity: cfg.Capacity,
			FlatEBR:         v.flat,
			PinBudget:       cfg.PinBudget,
		})

		// Concurrent writer: grow one block above Capacity, shrink it
		// back, repeat until the readers finish. Readers stay strictly
		// below Capacity, so the shrinks never reclaim their region.
		// Each op's wall time bounds its Synchronize (per locale).
		stop := make(chan struct{})
		var writerDone sync.WaitGroup
		var resizeTotal, resizeMax time.Duration
		var resizes uint64
		if cfg.ResizeInterval >= 0 {
			writerDone.Add(1)
			go c.Run(func(wt *locale.Task) {
				defer writerDone.Done()
				grown := false
				record := func(fn func()) {
					t0 := time.Now()
					fn()
					d := time.Since(t0)
					resizeTotal += d
					if d > resizeMax {
						resizeMax = d
					}
					resizes++
				}
				for {
					select {
					case <-stop:
						if grown {
							record(func() { a.Shrink(wt, cfg.BlockSize) })
						}
						return
					default:
					}
					if grown {
						record(func() { a.Shrink(wt, cfg.BlockSize) })
					} else {
						record(func() { a.Grow(wt, cfg.BlockSize) })
					}
					grown = !grown
					time.Sleep(cfg.ResizeInterval)
				}
			})
		}

		start := time.Now()
		task.Coforall(func(sub *locale.Task) {
			sub.ForAllTasks(tasks, func(tt *locale.Task, id int) {
				seed := cfg.Seed ^ uint64(tt.Here().ID())<<32 ^ uint64(id)
				stream := workload.NewIndexStreamRange(cfg.Pattern, seed, 0, cfg.Capacity)
				var sink int64
				if v.pinned {
					rd := a.Reader(tt)
					for op := 0; op < cfg.OpsPerTask; op++ {
						sink += rd.Load(stream.Next())
					}
					h, m := rd.CacheStats()
					hits.Add(h)
					misses.Add(m)
					rd.Close()
				} else {
					for op := 0; op < cfg.OpsPerTask; op++ {
						sink += a.Load(tt, stream.Next())
					}
				}
				_ = sink
			})
		})
		elapsed = time.Since(start)
		close(stop)
		writerDone.Wait()

		retries, _ := a.EBRStats(c)
		point.EBRRetries = retries
		point.Resizes = resizes
		if resizes > 0 {
			point.ResizeMeanMicros = float64(resizeTotal.Microseconds()) / float64(resizes)
			point.ResizeMaxMicros = float64(resizeMax.Microseconds())
		}
		a.Destroy(task)
	})

	totalOps := float64(cfg.Locales) * float64(tasks) * float64(cfg.OpsPerTask)
	point.ReadsPerSec = totalOps / elapsed.Seconds()
	point.CacheHits = hits.Load()
	point.CacheMisses = misses.Load()
	return point
}

// EncodeJSON writes the result as indented JSON (the BENCH_PR2.json shape).
func (r ReadScalingResult) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Format renders an aligned table like the figure results.
func (r ReadScalingResult) Format(w io.Writer) {
	fmt.Fprintf(w, "%s\n", r.Title)
	fmt.Fprintf(w, "locales=%d ops/task=%d capacity=%d pattern=%s\n",
		r.Locales, r.OpsPerTask, r.Capacity, r.Pattern)
	fmt.Fprintf(w, "%-20s %8s %14s %12s %12s %10s\n",
		"variant", "tasks", "reads/s", "resize-mean", "resize-max", "hit-rate")
	for _, p := range r.Points {
		hitRate := 0.0
		if tot := p.CacheHits + p.CacheMisses; tot > 0 {
			hitRate = float64(p.CacheHits) / float64(tot)
		}
		fmt.Fprintf(w, "%-20s %8d %14.0f %11.0fus %11.0fus %9.1f%%\n",
			p.Variant, p.TasksPerLocale, p.ReadsPerSec,
			p.ResizeMeanMicros, p.ResizeMaxMicros, hitRate*100)
	}
}
