package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"rcuarray/internal/locale"
	"rcuarray/internal/workload"
)

func TestKindEBRFlat(t *testing.T) {
	parsed, err := ParseKind("EBRArray-flat")
	if err != nil || parsed != KindEBRFlat {
		t.Fatalf("ParseKind(EBRArray-flat) = %v, %v", parsed, err)
	}
	if KindEBRFlat.IsQSBR() {
		t.Fatal("EBRArray-flat misclassified as QSBR")
	}
	c := locale.NewCluster(locale.Config{Locales: 2, WorkersPerLocale: 2})
	defer c.Shutdown()
	c.Run(func(task *locale.Task) {
		tgt := BuildTarget(task, KindEBRFlat, 8, 16)
		if got := tgt.Name(); got != "EBRArray-flat" {
			t.Errorf("Name = %q, want EBRArray-flat", got)
		}
		tgt.Store(task, 5, 42)
		if got := tgt.Load(task, 5); got != 42 {
			t.Errorf("round trip = %d", got)
		}
		tgt.Grow(task, 8)
		if got := tgt.Len(task); got != 24 {
			t.Errorf("Len after Grow = %d, want 24", got)
		}
	})
}

// Every kind serves a read session: core kinds a pinned one with a live
// cache, baselines the per-op fallback with zero cache stats.
func TestOpenReadSessionAllKinds(t *testing.T) {
	c := locale.NewCluster(locale.Config{Locales: 1, WorkersPerLocale: 2})
	defer c.Shutdown()
	c.Run(func(task *locale.Task) {
		for _, k := range []Kind{KindEBR, KindQSBR, KindEBRFlat, KindChapel, KindSync, KindRW} {
			tgt := BuildTarget(task, k, 8, 32)
			tgt.Store(task, 9, 77)
			sess := OpenReadSession(tgt, task)
			for i := 0; i < 4; i++ {
				if got := sess.Load(9); got != 77 {
					t.Errorf("%v session Load = %d, want 77", k, got)
				}
			}
			hits, misses := sess.CacheStats()
			switch k {
			case KindEBR, KindQSBR, KindEBRFlat:
				if hits != 3 || misses != 1 {
					t.Errorf("%v cache stats = %d/%d, want 3 hits / 1 miss", k, hits, misses)
				}
			default:
				if hits != 0 || misses != 0 {
					t.Errorf("%v fallback session reported cache stats %d/%d", k, hits, misses)
				}
			}
			sess.Close()
			// Core sessions released their pin: a resize must proceed.
			tgt.Grow(task, 8)
		}
	})
}

func TestRunIndexingPinnedAccess(t *testing.T) {
	cfg := tinyIndexing(workload.Sequential)
	cfg.Kinds = []Kind{KindEBR, KindEBRFlat, KindQSBR}
	cfg.Access = AccessLoadPinned
	res := RunIndexing(cfg)
	if len(res.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(res.Series))
	}
	for _, s := range res.Series {
		for _, p := range s.Points {
			if p.OpsPerSec <= 0 {
				t.Fatalf("%s at %d locales: %.1f ops/s", s.Label, p.X, p.OpsPerSec)
			}
		}
	}
}

func TestRunReadScalingSmoke(t *testing.T) {
	cfg := ReadScalingConfig{
		Locales:    1,
		TaskCounts: []int{1, 2},
		OpsPerTask: 512,
		Capacity:   512,
		BlockSize:  64,
		Pattern:    workload.Sequential,
		Seed:       11,
	}
	res := RunReadScaling(cfg)
	wantPoints := len(readScalingVariants()) * len(cfg.TaskCounts)
	if len(res.Points) != wantPoints {
		t.Fatalf("points = %d, want %d", len(res.Points), wantPoints)
	}
	byVariant := map[string]int{}
	var totalResizes uint64
	for _, p := range res.Points {
		byVariant[p.Variant]++
		totalResizes += p.Resizes
		if p.ReadsPerSec <= 0 {
			t.Errorf("%s @%d tasks: %.1f reads/s", p.Variant, p.TasksPerLocale, p.ReadsPerSec)
		}
		if strings.HasSuffix(p.Variant, "-pinned") {
			if p.CacheHits+p.CacheMisses == 0 {
				t.Errorf("%s @%d tasks: pinned variant recorded no cache traffic", p.Variant, p.TasksPerLocale)
			}
		} else if p.CacheHits+p.CacheMisses != 0 {
			t.Errorf("%s @%d tasks: unpinned variant recorded cache traffic", p.Variant, p.TasksPerLocale)
		}
	}
	// Per-point resize counts can be zero at smoke scale (the reader loop
	// may outrun the writer goroutine's first Grow), but across the whole
	// sweep the concurrent writer must have run.
	if totalResizes == 0 {
		t.Error("concurrent writer performed no resizes across the entire sweep")
	}
	for _, v := range readScalingVariants() {
		if byVariant[v.name] != len(cfg.TaskCounts) {
			t.Errorf("variant %s has %d points, want %d", v.name, byVariant[v.name], len(cfg.TaskCounts))
		}
	}

	var buf bytes.Buffer
	if err := res.EncodeJSON(&buf); err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}
	var back ReadScalingResult
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if len(back.Points) != wantPoints || back.Pattern != "sequential" {
		t.Fatalf("round-tripped result: %d points, pattern %q", len(back.Points), back.Pattern)
	}

	buf.Reset()
	res.Format(&buf)
	out := buf.String()
	for _, want := range []string{"ebr-flat", "ebr-striped-pinned", "qsbr", "hit-rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
}

// Disabling the concurrent writer (negative interval) yields zero resizes.
func TestRunReadScalingNoWriter(t *testing.T) {
	res := RunReadScaling(ReadScalingConfig{
		Locales:        1,
		TaskCounts:     []int{1},
		OpsPerTask:     128,
		Capacity:       128,
		BlockSize:      64,
		Pattern:        workload.Random,
		ResizeInterval: -1,
	})
	for _, p := range res.Points {
		if p.Resizes != 0 {
			t.Errorf("%s: %d resizes with the writer disabled", p.Variant, p.Resizes)
		}
		if p.ReadsPerSec <= 0 {
			t.Errorf("%s: %.1f reads/s", p.Variant, p.ReadsPerSec)
		}
	}
}
