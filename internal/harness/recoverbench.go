package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"rcuarray/internal/comm"
	"rcuarray/internal/dist"
)

// RecoverBenchConfig parameterizes the PR 8 durability experiment. It answers
// the acceptance question: does snapshotting stall writers? The paper's RCU
// reading discipline says it must not — a snapshot cut is an RCU read of the
// published table plus per-segment copies, so a driver writing at full tilt
// while every node streams snapshots should lose almost no throughput. The
// A/B is interleaved (baseline rep, snapshot rep, repeat) and keeps the best
// rep per arm, the harness convention for shared-hardware noise.
//
// A second measurement times one full kill-restart-rejoin of a block owner:
// newest snapshot load, WAL replay, peer catch-up, back to serving.
type RecoverBenchConfig struct {
	// Nodes is the cluster size.
	Nodes int
	// BlockSize is elements per block; Blocks the array size in blocks.
	BlockSize int
	Blocks    int
	// Writers is the concurrent driver-side writer count; OpsPerWriter the
	// acknowledged writes each issues per rep.
	Writers      int
	OpsPerWriter int
	// SnapshotPause is the idle time between full snapshot sweeps in the
	// snapshot arm (default 100ms — ten full-cluster snapshots per second).
	SnapshotPause time.Duration
	// Seed feeds the driver's retry jitter.
	Seed uint64
	// Repetitions is the interleaved A/B rep count.
	Repetitions int
}

func (c RecoverBenchConfig) withDefaults() RecoverBenchConfig {
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 256
	}
	if c.Blocks <= 0 {
		c.Blocks = 12
	}
	if c.Writers <= 0 {
		c.Writers = 4
	}
	if c.OpsPerWriter <= 0 {
		c.OpsPerWriter = 25000
	}
	if c.SnapshotPause <= 0 {
		// Snapshotting every node 10x a second is already far past any
		// operational cadence. A zero pause would instead measure how the
		// host's cores and disk queue divide between a 100%-duty fsync loop
		// and the writers — pure resource sharing, linear in duty cycle and
		// operator-controlled, not the serialization the gate is after.
		c.SnapshotPause = 100 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 0xD15C
	}
	if c.Repetitions <= 0 {
		c.Repetitions = 3
	}
	return c
}

// RecoverBenchResult is the experiment's JSON artifact (BENCH_PR8.json).
type RecoverBenchResult struct {
	Title        string `json:"title"`
	Nodes        int    `json:"nodes"`
	BlockSize    int    `json:"block_size"`
	Blocks       int    `json:"blocks"`
	Writers      int    `json:"writers"`
	OpsPerWriter int    `json:"ops_per_writer"`

	// Writer throughput with no snapshots vs. with every node continuously
	// snapshotting, best rep each; DipPct is the relative loss (>= 0).
	BaselineOpsPerSec float64 `json:"baseline_ops_per_sec"`
	SnapshotOpsPerSec float64 `json:"snapshot_ops_per_sec"`
	DipPct            float64 `json:"dip_pct"`
	// Snapshots and SnapshotBytes are the snapshot arm's best-rep totals.
	Snapshots     uint64 `json:"snapshots"`
	SnapshotBytes uint64 `json:"snapshot_bytes"`

	// RestartNanos is the wall-clock cost of one kill-restart-rejoin of a
	// block owner (process construction through serving, catch-up included).
	RestartNanos uint64 `json:"restart_ns"`
	// RestartWALReplayed is how many WAL milestones that restart replayed.
	RestartWALReplayed uint64 `json:"restart_wal_replayed"`

	// MaxDipPct is the gate the caller applied (0 = ungated); Pass its result.
	MaxDipPct float64 `json:"max_dip_pct,omitempty"`
	Pass      bool    `json:"pass"`
}

// recoverCluster spins up a durable cluster and a connected driver, growing
// the array to the configured size. The caller must invoke cleanup.
func recoverCluster(cfg RecoverBenchConfig) (d *dist.Driver, nodes []*dist.ArrayNode, dirs []string, cleanup func(), err error) {
	base, err := os.MkdirTemp("", "rcubench-recover-")
	if err != nil {
		return nil, nil, nil, nil, err
	}
	dirs = make([]string, cfg.Nodes)
	for i := range dirs {
		dirs[i] = filepath.Join(base, fmt.Sprintf("n%d", i))
	}
	nodes, stop, err := dist.SpawnLocalNodesOpts(cfg.Nodes, func(i int) dist.NodeOptions {
		return dist.NodeOptions{
			Comm:    comm.NodeConfig{FrameTimeout: 5 * time.Second},
			DataDir: dirs[i],
		}
	})
	if err != nil {
		os.RemoveAll(base)
		return nil, nil, nil, nil, err
	}
	addrs := make([]string, len(nodes))
	for i, n := range nodes {
		addrs[i] = n.Addr()
	}
	d, err = dist.ConnectOpts(addrs, cfg.BlockSize, dist.Options{
		CallTimeout:    2 * time.Second,
		Retries:        4,
		LockTTL:        10 * time.Second,
		AcquireTimeout: 30 * time.Second,
		Seed:           cfg.Seed,
	})
	if err != nil {
		stop()
		os.RemoveAll(base)
		return nil, nil, nil, nil, err
	}
	cleanup = func() {
		d.Close()
		stop()
		os.RemoveAll(base)
	}
	if err := d.Grow(cfg.Blocks * cfg.BlockSize); err != nil {
		cleanup()
		return nil, nil, nil, nil, err
	}
	return d, nodes, dirs, cleanup, nil
}

// runRecoverArm measures one rep of one arm: Writers goroutines each issue
// OpsPerWriter acknowledged writes; the snapshot arm additionally runs a
// continuous snapshot sweep over every node until the writers finish.
func runRecoverArm(cfg RecoverBenchConfig, snapshot bool) (opsPerSec float64, snaps, snapBytes uint64, err error) {
	d, _, _, cleanup, err := recoverCluster(cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	defer cleanup()
	length := cfg.Blocks * cfg.BlockSize

	stopSnap := make(chan struct{})
	snapDone := make(chan struct{})
	var snapErr error
	if snapshot {
		go func() {
			defer close(snapDone)
			for {
				select {
				case <-stopSnap:
					return
				default:
				}
				for i := 0; i < cfg.Nodes; i++ {
					info, err := d.SnapshotNode(i)
					if err != nil {
						snapErr = err
						return
					}
					snaps++
					snapBytes += info.Bytes
				}
				if cfg.SnapshotPause > 0 {
					time.Sleep(cfg.SnapshotPause)
				}
			}
		}()
	} else {
		close(snapDone)
	}

	var wg sync.WaitGroup
	errs := make(chan error, cfg.Writers)
	start := time.Now()
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < cfg.OpsPerWriter; i++ {
				idx := (w*cfg.OpsPerWriter + i*7) % length
				if err := d.Write(idx, int64(w)<<32|int64(i)); err != nil {
					errs <- fmt.Errorf("writer %d op %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stopSnap)
	<-snapDone
	select {
	case err := <-errs:
		return 0, 0, 0, err
	default:
	}
	if snapErr != nil {
		return 0, 0, 0, fmt.Errorf("snapshot sweep: %w", snapErr)
	}
	total := float64(cfg.Writers * cfg.OpsPerWriter)
	return total / elapsed.Seconds(), snaps, snapBytes, nil
}

// runRecoverRestart times one kill-restart-rejoin: populate, snapshot
// everything, resize a few more times (so the restart replays WAL on top of
// the snapshot), kill a block owner, bring it back on its old address.
func runRecoverRestart(cfg RecoverBenchConfig) (restartNs, walReplayed uint64, err error) {
	d, nodes, dirs, cleanup, err := recoverCluster(cfg)
	if err != nil {
		return 0, 0, err
	}
	defer cleanup()
	length := cfg.Blocks * cfg.BlockSize
	for i := 0; i < length; i += 17 {
		if err := d.Write(i, int64(i)); err != nil {
			return 0, 0, err
		}
	}
	for i := 0; i < cfg.Nodes; i++ {
		if _, err := d.SnapshotNode(i); err != nil {
			return 0, 0, err
		}
	}
	for i := 0; i < 4; i++ {
		if err := d.Grow(cfg.BlockSize); err != nil {
			return 0, 0, err
		}
	}

	victim := cfg.Nodes - 1
	addr := nodes[victim].Addr()
	nodes[victim].Close()
	start := time.Now()
	var revived *dist.ArrayNode
	deadline := time.Now().Add(10 * time.Second)
	for {
		revived, err = dist.NewArrayNodeOpts(addr, dist.NodeOptions{
			Comm:    comm.NodeConfig{FrameTimeout: 5 * time.Second},
			DataDir: dirs[victim],
		})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return 0, 0, fmt.Errorf("restart: %w", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	restartNs = uint64(time.Since(start).Nanoseconds())
	defer revived.Close()

	stats, err := d.Stats()
	if err != nil {
		return 0, 0, err
	}
	if stats[victim].Recoveries == 0 {
		return 0, 0, fmt.Errorf("restarted node reports no recovery")
	}
	return restartNs, stats[victim].WALReplayed, nil
}

// RunRecoverBench runs the snapshot-under-load A/B and the restart timing.
func RunRecoverBench(cfg RecoverBenchConfig) (RecoverBenchResult, error) {
	cfg = cfg.withDefaults()
	res := RecoverBenchResult{
		Title:        "PR 8: snapshot-under-load writer throughput + kill-restart-rejoin cost",
		Nodes:        cfg.Nodes,
		BlockSize:    cfg.BlockSize,
		Blocks:       cfg.Blocks,
		Writers:      cfg.Writers,
		OpsPerWriter: cfg.OpsPerWriter,
	}
	for rep := 0; rep < cfg.Repetitions; rep++ {
		base, _, _, err := runRecoverArm(cfg, false)
		if err != nil {
			return res, fmt.Errorf("baseline rep %d: %w", rep, err)
		}
		snap, snaps, snapBytes, err := runRecoverArm(cfg, true)
		if err != nil {
			return res, fmt.Errorf("snapshot rep %d: %w", rep, err)
		}
		if base > res.BaselineOpsPerSec {
			res.BaselineOpsPerSec = base
		}
		if snap > res.SnapshotOpsPerSec {
			res.SnapshotOpsPerSec = snap
			res.Snapshots = snaps
			res.SnapshotBytes = snapBytes
		}
	}
	if res.BaselineOpsPerSec > 0 && res.SnapshotOpsPerSec < res.BaselineOpsPerSec {
		res.DipPct = (1 - res.SnapshotOpsPerSec/res.BaselineOpsPerSec) * 100
	}
	restartNs, walReplayed, err := runRecoverRestart(cfg)
	if err != nil {
		return res, fmt.Errorf("restart timing: %w", err)
	}
	res.RestartNanos = restartNs
	res.RestartWALReplayed = walReplayed
	res.Pass = true
	return res, nil
}

// EncodeJSON writes the result as indented JSON (the BENCH_PR8.json shape).
func (r RecoverBenchResult) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Format renders a human-readable summary.
func (r RecoverBenchResult) Format(w io.Writer) {
	fmt.Fprintf(w, "%s\n", r.Title)
	fmt.Fprintf(w, "nodes=%d block=%d x %d blocks, %d writers x %d acked writes\n",
		r.Nodes, r.BlockSize, r.Blocks, r.Writers, r.OpsPerWriter)
	fmt.Fprintf(w, "  writer throughput: baseline %.0f ops/s, under snapshots %.0f ops/s (dip %.2f%%)\n",
		r.BaselineOpsPerSec, r.SnapshotOpsPerSec, r.DipPct)
	fmt.Fprintf(w, "  snapshots in best rep: %d (%d bytes streamed)\n", r.Snapshots, r.SnapshotBytes)
	fmt.Fprintf(w, "  kill-restart-rejoin: %s, %d WAL milestones replayed\n",
		time.Duration(r.RestartNanos), r.RestartWALReplayed)
	if r.MaxDipPct > 0 {
		verdict := "PASS"
		if !r.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "  gate: dip <= %.1f%% -> %s\n", r.MaxDipPct, verdict)
	}
}
