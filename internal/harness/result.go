package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Point is one measurement: throughput at an x-axis position (locale count
// for Figures 2–3, operations-per-checkpoint for Figure 4).
type Point struct {
	X         int
	OpsPerSec float64
}

// Series is one line of a figure.
type Series struct {
	Label  string
	Points []Point
}

// At returns the series value at x, or 0 if absent.
func (s Series) At(x int) float64 {
	for _, p := range s.Points {
		if p.X == x {
			return p.OpsPerSec
		}
	}
	return 0
}

// Result is one reproduced figure.
type Result struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// SeriesByLabel returns the named series, or nil.
func (r Result) SeriesByLabel(label string) *Series {
	for i := range r.Series {
		if r.Series[i].Label == label {
			return &r.Series[i]
		}
	}
	return nil
}

// xs returns the sorted union of x positions across all series.
func (r Result) xs() []int {
	set := map[int]bool{}
	for _, s := range r.Series {
		for _, p := range s.Points {
			set[p.X] = true
		}
	}
	out := make([]int, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Ints(out)
	return out
}

// Format writes the result as an aligned text table, one row per x position
// and one column per series — the textual equivalent of the paper's plots.
func (r Result) Format(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", r.Title)
	cols := []string{r.XLabel}
	for _, s := range r.Series {
		cols = append(cols, s.Label)
	}
	widths := make([]int, len(cols))
	rows := [][]string{cols}
	for _, x := range r.xs() {
		row := []string{fmt.Sprintf("%d", x)}
		for _, s := range r.Series {
			v := s.At(x)
			if v == 0 {
				row = append(row, "-")
			} else {
				row = append(row, formatOps(v))
			}
		}
		rows = append(rows, row)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		fmt.Fprintln(w, b.String())
		if ri == 0 {
			fmt.Fprintln(w, strings.Repeat("-", len(b.String())))
		}
	}
	fmt.Fprintf(w, "(%s)\n", r.YLabel)
}

// FormatCSV writes the result as CSV for plotting.
func (r Result) FormatCSV(w io.Writer) {
	cols := []string{r.XLabel}
	for _, s := range r.Series {
		cols = append(cols, s.Label)
	}
	fmt.Fprintln(w, strings.Join(cols, ","))
	for _, x := range r.xs() {
		row := []string{fmt.Sprintf("%d", x)}
		for _, s := range r.Series {
			row = append(row, fmt.Sprintf("%.1f", s.At(x)))
		}
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// Ratio returns series a's value divided by series b's at x (0 if either is
// missing). EXPERIMENTS.md uses it for the paper-vs-measured comparisons
// ("QSBRArray offers ~1.5x ChapelArray", "4x resize", ...).
func (r Result) Ratio(a, b string, x int) float64 {
	sa, sb := r.SeriesByLabel(a), r.SeriesByLabel(b)
	if sa == nil || sb == nil {
		return 0
	}
	va, vb := sa.At(x), sb.At(x)
	if vb == 0 {
		return 0
	}
	return va / vb
}

func formatOps(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fk", v/1e3)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}
