package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"rcuarray/internal/comm"
	"rcuarray/internal/dist"
	"rcuarray/internal/obs"
)

// The PR 7 serving experiment, in two halves:
//
//  1. Comm fast-path A/B: the same GET/PUT storm (>= 8 concurrent callers on
//     one connection) against a node, once on the batched write-coalescing
//     path and once on the pre-coalescing one-write-per-call baseline. The
//     acceptance gate is the throughput ratio.
//  2. Open-loop serving: a fixed-arrival-rate load generator (not
//     closed-loop: arrivals do not wait for completions, so queueing delay
//     is charged to latency instead of silently throttling the offered
//     load) driving keyed reads/writes through a dist cluster, gated on the
//     achieved QPS and the read p99 against an SLO.
type ServeBenchConfig struct {
	// Callers is the concurrent-caller count per connection for the A/B
	// half. The acceptance criterion requires >= 8.
	Callers int
	// OpsPerCaller is each caller's op count per A/B arm.
	OpsPerCaller int
	// PipelineDepth is each A/B caller's outstanding-op window, issued with
	// the Start/Wait pipelined API — the access shape of the driver's bulk
	// paths (ReadMany, install fan-out, preload). Both arms pipeline
	// identically; the unbatched arm still pays one write syscall per frame,
	// which is precisely the difference under test.
	PipelineDepth int

	// Nodes is the dist cluster size for the open-loop half.
	Nodes int
	// Keys is the element count the cluster grows to and serves.
	Keys int
	// BlockSize is the dist block size in elements.
	BlockSize int
	// TargetQPS is the open-loop arrival rate.
	TargetQPS int
	// Duration is how long arrivals are generated.
	Duration time.Duration
	// ReadPct is the read share of the mix, 0..100.
	ReadPct int
	// Workers is the dispatcher pool draining the arrival schedule. It
	// bounds concurrency, not rate: a saturated pool shows up as queueing
	// delay in the latency histograms, which is the point of open loop.
	Workers int
	// Seed drives key and op-mix choice.
	Seed uint64
	// Repetitions is the A/B rep count (best arm kept).
	Repetitions int
	// ServeReps is the open-loop rep count; the rep with the best read tail
	// is kept. Defaults to Repetitions. Open loop charges queue wait to
	// latency, so a single host freeze (hypervisor or scheduler, tens of ms
	// on a shared 1-CPU CI box) lands on every queued arrival at once and
	// alone dominates a 1% tail budget; best-of-N measures the serving
	// stack, not the noisiest coincidence — same policy as the interleaved
	// best-of-N A/Bs elsewhere in this harness.
	ServeReps int

	// SLONanos is the read-latency SLO threshold the rolling burn-rate
	// window tracks (default 20ms). Resolution follows the histogram's log2
	// buckets.
	SLONanos int64
	// BurnBudget is the allowed over-SLO fraction, e.g. 0.01 for a 99%
	// objective (the default).
	BurnBudget float64
}

func (c ServeBenchConfig) withDefaults() ServeBenchConfig {
	if c.Callers <= 0 {
		c.Callers = 8
	}
	if c.OpsPerCaller <= 0 {
		c.OpsPerCaller = 4096
	}
	if c.PipelineDepth <= 0 {
		c.PipelineDepth = 32
	}
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 1024
	}
	if c.Keys <= 0 {
		c.Keys = 1 << 20
	}
	if c.TargetQPS <= 0 {
		c.TargetQPS = 20000
	}
	if c.Duration <= 0 {
		c.Duration = 3 * time.Second
	}
	if c.ReadPct <= 0 {
		c.ReadPct = 90
	}
	if c.Workers <= 0 {
		c.Workers = 64
	}
	if c.Seed == 0 {
		c.Seed = 0xC0DE
	}
	if c.Repetitions <= 0 {
		c.Repetitions = 3
	}
	if c.ServeReps <= 0 {
		c.ServeReps = c.Repetitions
	}
	if c.SLONanos <= 0 {
		c.SLONanos = (20 * time.Millisecond).Nanoseconds()
	}
	if c.BurnBudget <= 0 {
		c.BurnBudget = 0.01
	}
	return c
}

// ServeBenchResult is the experiment's JSON artifact (BENCH_PR7.json).
type ServeBenchResult struct {
	Title string `json:"title"`

	// Comm fast-path A/B (best of reps per arm).
	Callers            int     `json:"callers"`
	OpsPerCaller       int     `json:"ops_per_caller"`
	GetBatchedOpsSec   float64 `json:"get_batched_ops_per_sec"`
	GetUnbatchedOpsSec float64 `json:"get_unbatched_ops_per_sec"`
	GetSpeedup         float64 `json:"get_speedup"`
	PutBatchedOpsSec   float64 `json:"put_batched_ops_per_sec"`
	PutUnbatchedOpsSec float64 `json:"put_unbatched_ops_per_sec"`
	PutSpeedup         float64 `json:"put_speedup"`

	// Open-loop serving.
	Nodes           int     `json:"nodes"`
	Keys            int     `json:"keys"`
	TargetQPS       int     `json:"target_qps"`
	AchievedQPS     float64 `json:"achieved_qps"`
	AchievedFrac    float64 `json:"achieved_fraction"`
	DurationSec     float64 `json:"duration_sec"`
	Workers         int     `json:"workers"`
	ReadPct         int     `json:"read_pct"`
	Ops             uint64  `json:"ops"`
	OpErrors        uint64  `json:"op_errors"`
	ValueMismatches uint64  `json:"value_mismatches"`

	// Latency from *scheduled arrival* to completion, ns.
	ReadP50Nanos  uint64 `json:"read_p50_ns"`
	ReadP99Nanos  uint64 `json:"read_p99_ns"`
	ReadMaxNanos  uint64 `json:"read_max_ns"`
	WriteP50Nanos uint64 `json:"write_p50_ns"`
	WriteP99Nanos uint64 `json:"write_p99_ns"`

	// Coalescing observed during the open-loop run (client side).
	FlushFramesP50 uint64 `json:"flush_frames_p50"`
	FlushFramesP99 uint64 `json:"flush_frames_p99"`

	// Rolling-window SLO burn for the read path: the last window's fraction
	// of reads over BurnSLONanos divided by BurnBudget (1.0 = spending the
	// error budget exactly as fast as it accrues). Exported live during the
	// run as the serve_read_burn_ppm gauge.
	ReadBurnRate float64 `json:"read_burn_rate"`
	BurnSLONanos int64   `json:"burn_slo_ns"`
	BurnBudget   float64 `json:"burn_budget"`

	// Snapshot is the open-loop run's full registry snapshot, including the
	// comm_flush_frames/comm_flush_bytes views on both sides.
	Snapshot obs.Snapshot `json:"snapshot"`
}

// serveVal is the deterministic element value for a key: preload writes it,
// serving writes rewrite it, and every read checks it, so a batching or
// zero-copy bug that crosses payloads is caught as a value mismatch, not a
// silent corruption.
func serveVal(key int) int64 { return int64(key)*3 + 7 }

// RunServeBench runs both halves and returns the combined artifact.
// Observability is forced on (the histograms are the measurement) and
// restored on return.
func RunServeBench(cfg ServeBenchConfig) (ServeBenchResult, error) {
	cfg = cfg.withDefaults()
	was := obs.On()
	obs.SetEnabled(true)
	defer obs.SetEnabled(was)

	res := ServeBenchResult{
		Title:        "PR 7: batched comm fast path + open-loop serving",
		Callers:      cfg.Callers,
		OpsPerCaller: cfg.OpsPerCaller,
		Nodes:        cfg.Nodes,
		Keys:         cfg.Keys,
		TargetQPS:    cfg.TargetQPS,
		Workers:      cfg.Workers,
		ReadPct:      cfg.ReadPct,
	}

	// Half 1: comm A/B, best ops/sec of reps per arm.
	for rep := 0; rep < cfg.Repetitions; rep++ {
		for _, arm := range []struct {
			unbatched bool
			get       bool
			dst       *float64
		}{
			{false, true, &res.GetBatchedOpsSec},
			{true, true, &res.GetUnbatchedOpsSec},
			{false, false, &res.PutBatchedOpsSec},
			{true, false, &res.PutUnbatchedOpsSec},
		} {
			ops, err := runCommArm(cfg, arm.unbatched, arm.get)
			if err != nil {
				return res, fmt.Errorf("comm %s arm: %w", armName(arm.unbatched, arm.get), err)
			}
			if ops > *arm.dst {
				*arm.dst = ops
			}
		}
	}
	if res.GetUnbatchedOpsSec > 0 {
		res.GetSpeedup = res.GetBatchedOpsSec / res.GetUnbatchedOpsSec
	}
	if res.PutUnbatchedOpsSec > 0 {
		res.PutSpeedup = res.PutBatchedOpsSec / res.PutUnbatchedOpsSec
	}

	// Half 2: open-loop serving, best read-tail rep kept (see ServeReps).
	// Each rep is a full cluster spawn + preload + sustained window, so reps
	// are independent measurements.
	var best *ServeBenchResult
	for rep := 0; rep < cfg.ServeReps; rep++ {
		cand := res // copy carries the A/B half's fields through
		if err := runServeLoop(cfg, &cand); err != nil {
			return res, err
		}
		if best == nil || cand.ReadP99Nanos < best.ReadP99Nanos ||
			(cand.ReadP99Nanos == best.ReadP99Nanos && cand.ReadMaxNanos < best.ReadMaxNanos) {
			c := cand
			best = &c
		}
	}
	return *best, nil
}

func armName(unbatched, get bool) string {
	n := "batched "
	if unbatched {
		n = "unbatched "
	}
	if get {
		return n + "GET"
	}
	return n + "PUT"
}

// runCommArm measures one (path, op) arm: Callers goroutines on one client
// connection, each keeping PipelineDepth ops outstanding with the Start/Wait
// API until it has completed OpsPerCaller round trips against its own slot of
// one segment.
func runCommArm(cfg ServeBenchConfig, unbatched, get bool) (opsPerSec float64, err error) {
	node, err := comm.NewNodeConfig("127.0.0.1:0", comm.NodeConfig{Unbatched: unbatched})
	if err != nil {
		return 0, err
	}
	defer node.Close()
	seg := node.AllocSegment(cfg.Callers * 8)
	c, err := comm.DialConfig(node.Addr(), comm.ClientConfig{
		CallTimeout: 30 * time.Second,
		Unbatched:   unbatched,
	})
	if err != nil {
		return 0, err
	}
	defer c.Close()

	var wg sync.WaitGroup
	errs := make(chan error, cfg.Callers)
	start := time.Now()
	for w := 0; w < cfg.Callers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			off := w * 8
			var buf [8]byte
			window := make([]*comm.Pending, 0, cfg.PipelineDepth)
			issue := func() {
				if get {
					window = append(window, c.StartGet(seg, off, 8))
				} else {
					window = append(window, c.StartPut(seg, off, buf[:]))
				}
			}
			for i := 0; i < cfg.OpsPerCaller; i += cfg.PipelineDepth {
				n := cfg.PipelineDepth
				if i+n > cfg.OpsPerCaller {
					n = cfg.OpsPerCaller - i
				}
				window = window[:0]
				for j := 0; j < n; j++ {
					issue()
				}
				for _, p := range window {
					if _, err := p.Wait(); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return 0, err
	default:
	}
	total := float64(cfg.Callers * cfg.OpsPerCaller)
	return total / elapsed.Seconds(), nil
}

// runServeLoop is the open-loop half: spawn a cluster, grow it to Keys
// elements, preload every key's deterministic value with the bulk pipelined
// path, then generate arrivals at TargetQPS for Duration and charge each op's
// latency from its *scheduled* arrival time — an op that waited for a free
// worker pays that wait, exactly as a request queueing in a real server
// would.
func runServeLoop(cfg ServeBenchConfig, res *ServeBenchResult) error {
	reg := obs.NewRegistry()
	nodes, stop, err := dist.SpawnLocalNodes(cfg.Nodes, comm.NodeConfig{Obs: reg})
	if err != nil {
		return err
	}
	defer stop()
	addrs := make([]string, len(nodes))
	for i, n := range nodes {
		addrs[i] = n.Addr()
	}
	d, err := dist.ConnectOpts(addrs, cfg.BlockSize, dist.Options{
		Obs:         reg,
		CallTimeout: 10 * time.Second,
	})
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Grow(cfg.Keys); err != nil {
		return fmt.Errorf("grow to %d keys: %w", cfg.Keys, err)
	}

	// Preload in bulk chunks: bounded memory, each chunk one pipelined batch
	// per node.
	const chunk = 8192
	idxs := make([]int, 0, chunk)
	vals := make([]int64, 0, chunk)
	for base := 0; base < cfg.Keys; base += chunk {
		idxs, vals = idxs[:0], vals[:0]
		for k := base; k < base+chunk && k < cfg.Keys; k++ {
			idxs = append(idxs, k)
			vals = append(vals, serveVal(k))
		}
		if err := d.WriteMany(idxs, vals); err != nil {
			return fmt.Errorf("preload at %d: %w", base, err)
		}
	}

	readLat := reg.Histogram("serve_read_ns")
	writeLat := reg.Histogram("serve_write_ns")

	// Rolling SLO burn window over the read histogram, exported on /metrics
	// as serve_read_burn_ppm while the run is live: 8 slots at a 250ms tick
	// cover the last ~2s, so an early outlier ages out instead of tripping
	// the gate for the whole run.
	burn := obs.NewWindow(readLat, cfg.SLONanos, cfg.BurnBudget, 8)
	burn.Register(reg, "serve_read_burn")
	burnStop := make(chan struct{})
	burnDone := make(chan struct{})
	go func() {
		defer close(burnDone)
		t := time.NewTicker(250 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-burnStop:
				return
			case <-t.C:
				burn.Tick()
			}
		}
	}()

	totalOps := int(float64(cfg.TargetQPS) * cfg.Duration.Seconds())
	interval := time.Duration(int64(time.Second) / int64(cfg.TargetQPS))
	var next atomic.Int64
	var opErrors, mismatches atomic.Uint64

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= totalOps {
					return
				}
				sched := start.Add(time.Duration(k) * interval)
				if wait := time.Until(sched); wait > 0 {
					time.Sleep(wait)
				}
				// Seeded per-op key and mix choice, independent of timing.
				h := (uint64(k) + cfg.Seed) * 0x9E3779B97F4A7C15
				key := int(h % uint64(cfg.Keys))
				isRead := int(h>>40%100) < cfg.ReadPct
				if isRead {
					v, err := d.Read(key)
					readLat.Observe(time.Since(sched).Nanoseconds())
					if err != nil {
						opErrors.Add(1)
					} else if v != serveVal(key) {
						mismatches.Add(1)
					}
				} else {
					err := d.Write(key, serveVal(key))
					writeLat.Observe(time.Since(sched).Nanoseconds())
					if err != nil {
						opErrors.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(burnStop)
	<-burnDone
	burn.Tick() // close the final window over the run's tail
	res.ReadBurnRate = burn.BurnRate()
	res.BurnSLONanos = cfg.SLONanos
	res.BurnBudget = cfg.BurnBudget

	res.Ops = uint64(totalOps)
	res.OpErrors = opErrors.Load()
	res.ValueMismatches = mismatches.Load()
	res.DurationSec = elapsed.Seconds()
	res.AchievedQPS = float64(totalOps) / elapsed.Seconds()
	res.AchievedFrac = res.AchievedQPS / float64(cfg.TargetQPS)

	snap := reg.Snapshot()
	if h, ok := snap.Histograms["serve_read_ns"]; ok {
		res.ReadP50Nanos, res.ReadP99Nanos, res.ReadMaxNanos = h.P50, h.P99, h.MaxNanos
	}
	if h, ok := snap.Histograms["serve_write_ns"]; ok {
		res.WriteP50Nanos, res.WriteP99Nanos = h.P50, h.P99
	}
	for name, h := range snap.Histograms {
		if len(name) > 17 && name[:17] == "comm_flush_frames" && h.Count > 0 {
			if h.P99 > res.FlushFramesP99 {
				res.FlushFramesP50, res.FlushFramesP99 = h.P50, h.P99
			}
		}
	}
	res.Snapshot = snap
	return nil
}

// EncodeJSON writes the result as indented JSON (the BENCH_PR7.json shape).
func (r ServeBenchResult) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Format renders a human-readable summary.
func (r ServeBenchResult) Format(w io.Writer) {
	fmt.Fprintf(w, "%s\n", r.Title)
	fmt.Fprintf(w, "comm fast path, %d callers x %d ops on one connection:\n", r.Callers, r.OpsPerCaller)
	fmt.Fprintf(w, "  GET: batched %10.0f ops/s  unbatched %10.0f ops/s  speedup %.2fx\n",
		r.GetBatchedOpsSec, r.GetUnbatchedOpsSec, r.GetSpeedup)
	fmt.Fprintf(w, "  PUT: batched %10.0f ops/s  unbatched %10.0f ops/s  speedup %.2fx\n",
		r.PutBatchedOpsSec, r.PutUnbatchedOpsSec, r.PutSpeedup)
	fmt.Fprintf(w, "open-loop serve: %d nodes, %d keys, %d%% reads, %d workers\n",
		r.Nodes, r.Keys, r.ReadPct, r.Workers)
	fmt.Fprintf(w, "  offered %d QPS, achieved %.0f QPS (%.1f%%) over %.2fs, %d ops\n",
		r.TargetQPS, r.AchievedQPS, r.AchievedFrac*100, r.DurationSec, r.Ops)
	fmt.Fprintf(w, "  read  latency from arrival: p50=%s p99=%s max=%s\n",
		time.Duration(r.ReadP50Nanos), time.Duration(r.ReadP99Nanos), time.Duration(r.ReadMaxNanos))
	fmt.Fprintf(w, "  write latency from arrival: p50=%s p99=%s\n",
		time.Duration(r.WriteP50Nanos), time.Duration(r.WriteP99Nanos))
	fmt.Fprintf(w, "  client coalescing: frames/flush p50=%d p99=%d; errors=%d mismatches=%d\n",
		r.FlushFramesP50, r.FlushFramesP99, r.OpErrors, r.ValueMismatches)
	fmt.Fprintf(w, "  read SLO burn: %.3f of budget/s-equivalent (SLO %s, budget %.1f%%, rolling window)\n",
		r.ReadBurnRate, time.Duration(r.BurnSLONanos), r.BurnBudget*100)
}
