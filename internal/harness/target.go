// Package harness runs the paper's evaluation: it builds any of the five
// arrays, drives them with workload streams across locale sweeps, and
// formats the resulting series the way the paper's figures report them
// (throughput in operations per second versus locale count or checkpoint
// frequency).
package harness

import (
	"fmt"

	"rcuarray/internal/baseline"
	"rcuarray/internal/core"
	"rcuarray/internal/locale"
)

// Kind selects one of the evaluated arrays.
type Kind int

const (
	// KindEBR is RCUArray under epoch-based reclamation ("EBRArray").
	KindEBR Kind = iota
	// KindQSBR is RCUArray under quiescent-state reclamation ("QSBRArray").
	KindQSBR
	// KindChapel is the unsynchronized block-distributed baseline
	// ("ChapelArray" / UnsafeArray).
	KindChapel
	// KindSync is the cluster-wide-lock baseline ("SyncArray").
	KindSync
	// KindRW is the reader-writer-lock ablation ("RWLockArray").
	KindRW
	// KindEBRFlat is RCUArray under EBR with the paper's exact flat
	// two-counter layout (no reader-counter striping) — the baseline of
	// the striping ablation.
	KindEBRFlat
	// KindEBRTree is RCUArray under EBR with the cluster-shared
	// combining-tree grace-period domain (hierarchical Synchronize fold;
	// see internal/ebr/tree.go). The default KindEBR striped layout is
	// the paper baseline it is compared against.
	KindEBRTree
)

// String returns the paper's label for the kind.
func (k Kind) String() string {
	switch k {
	case KindEBR:
		return "EBRArray"
	case KindQSBR:
		return "QSBRArray"
	case KindChapel:
		return "ChapelArray"
	case KindSync:
		return "SyncArray"
	case KindRW:
		return "RWLockArray"
	case KindEBRFlat:
		return "EBRArray-flat"
	case KindEBRTree:
		return "EBRArray-tree"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind resolves a label (as printed by String) back to a Kind.
func ParseKind(s string) (Kind, error) {
	for _, k := range []Kind{KindEBR, KindQSBR, KindChapel, KindSync, KindRW, KindEBRFlat, KindEBRTree} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("harness: unknown array kind %q", s)
}

// IsQSBR reports whether the kind needs checkpoints for reclamation.
func (k Kind) IsQSBR() bool { return k == KindQSBR }

// Target is the operation set common to all five arrays, over int64
// elements (the element type of every measured workload).
type Target interface {
	Name() string
	Len(t *locale.Task) int
	Load(t *locale.Task, idx int) int64
	Store(t *locale.Task, idx int, v int64)
	Grow(t *locale.Task, additional int)
}

type coreTarget struct {
	a    *core.Array[int64]
	name string
}

func (c coreTarget) Name() string                           { return c.name }
func (c coreTarget) Len(t *locale.Task) int                 { return c.a.Len(t) }
func (c coreTarget) Load(t *locale.Task, idx int) int64     { return c.a.Load(t, idx) }
func (c coreTarget) Store(t *locale.Task, idx int, v int64) { c.a.Store(t, idx, v) }
func (c coreTarget) Grow(t *locale.Task, additional int)    { c.a.Grow(t, additional) }

// ReadSession is an open amortized read session against a target (see
// core.Reader). Targets without session support serve it with per-op loads.
type ReadSession interface {
	Load(idx int) int64
	Close()
	// CacheStats returns location-cache hits and misses (both zero for
	// targets without a cache).
	CacheStats() (hits, misses uint64)
}

type sessionOpener interface {
	OpenReader(t *locale.Task) ReadSession
}

// OpenReadSession opens a pinned read session when the target supports one,
// and a plain per-op fallback otherwise, so workloads can be written
// uniformly against any Kind.
func OpenReadSession(tgt Target, t *locale.Task) ReadSession {
	if so, ok := tgt.(sessionOpener); ok {
		return so.OpenReader(t)
	}
	return plainSession{tgt: tgt, t: t}
}

type plainSession struct {
	tgt Target
	t   *locale.Task
}

func (p plainSession) Load(idx int) int64           { return p.tgt.Load(p.t, idx) }
func (p plainSession) Close()                       {}
func (p plainSession) CacheStats() (uint64, uint64) { return 0, 0 }

type coreSession struct{ rd core.Reader[int64] }

func (c coreTarget) OpenReader(t *locale.Task) ReadSession {
	return &coreSession{rd: c.a.Reader(t)}
}

func (c *coreSession) Load(idx int) int64           { return c.rd.Load(idx) }
func (c *coreSession) Close()                       { c.rd.Close() }
func (c *coreSession) CacheStats() (uint64, uint64) { return c.rd.CacheStats() }

// BuildTarget constructs the array of the given kind with blockSize and
// initial capacity (both in elements).
func BuildTarget(task *locale.Task, k Kind, blockSize, initial int) Target {
	switch k {
	case KindEBR, KindQSBR, KindEBRFlat, KindEBRTree:
		v := core.VariantEBR
		if k == KindQSBR {
			v = core.VariantQSBR
		}
		return coreTarget{name: k.String(), a: core.New[int64](task, core.Options{
			BlockSize:       blockSize,
			Variant:         v,
			InitialCapacity: initial,
			FlatEBR:         k == KindEBRFlat,
			TreeEBR:         k == KindEBRTree,
		})}
	case KindChapel:
		return baseline.NewUnsafe[int64](task, initial)
	case KindSync:
		return baseline.NewSync[int64](task, initial)
	case KindRW:
		return baseline.NewRWLock[int64](task, initial)
	default:
		panic(fmt.Sprintf("harness: unknown kind %d", int(k)))
	}
}
