package hp

// The three-way reclamation-scheme comparison the paper's introduction
// argues from: per-read cost of Hazard Pointers (publish + validate) vs the
// paper's TLS-free EBR (two collective RMWs + verify) vs QSBR (nothing,
// amortized checkpoints). Run with:
//
//	go test -bench BenchmarkReadSideSchemes ./internal/hp/

import (
	"sync/atomic"
	"testing"

	"rcuarray/internal/ebr"
	"rcuarray/internal/qsbr"
)

type payload struct{ v int64 }

func BenchmarkReadSideSchemes(b *testing.B) {
	var src atomic.Pointer[payload]
	src.Store(&payload{v: 7})
	var sink int64

	b.Run("hazard-pointers", func(b *testing.B) {
		d := New[payload](0)
		r := d.Acquire()
		defer r.Release()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := r.Protect(&src)
			sink += p.v
			r.Clear()
		}
	})
	b.Run("ebr-collective", func(b *testing.B) {
		d := ebr.New()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g := d.Enter()
			sink += src.Load().v
			g.Exit()
		}
	})
	b.Run("qsbr-checkpoint-every-64", func(b *testing.B) {
		d := qsbr.New()
		p := d.Register()
		defer d.Unregister(p)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sink += src.Load().v
			if i&63 == 63 {
				p.Checkpoint()
			}
		}
	})
	b.Run("unsafe-baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += src.Load().v
		}
	})
	_ = sink
}

// Writer-side comparison: retire+scan (HP) vs synchronize (EBR) vs defer
// (QSBR), each replacing the protected object with no concurrent readers.
func BenchmarkWriteSideSchemes(b *testing.B) {
	b.Run("hazard-pointers", func(b *testing.B) {
		d := New[payload](64)
		var src atomic.Pointer[payload]
		src.Store(&payload{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			old := src.Load()
			src.Store(&payload{v: int64(i)})
			d.Retire(old, func() {})
		}
	})
	b.Run("ebr-synchronize", func(b *testing.B) {
		d := ebr.New()
		var src atomic.Pointer[payload]
		src.Store(&payload{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src.Store(&payload{v: int64(i)})
			d.Synchronize()
		}
	})
	b.Run("qsbr-defer", func(b *testing.B) {
		d := qsbr.New()
		p := d.Register()
		defer d.Unregister(p)
		var src atomic.Pointer[payload]
		src.Store(&payload{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			old := src.Load()
			src.Store(&payload{v: int64(i)})
			p.Defer(func() { _ = old })
			if i&63 == 63 {
				p.Checkpoint()
			}
		}
	})
}
