// Package hp implements Hazard Pointers (Michael, 2004), the paper's
// explicitly named alternative to RCU (Section I): "Mechanisms such as
// Hazard Pointers can provide a safe non-blocking approach for memory
// reclamation with a balanced but noticeable overhead to both read and
// write operations ... unsuitable when the performance of reads is far more
// important than the performance of writes."
//
// It exists in this repository to make that comparison concrete: the
// three-way read-side benchmark in this package (hazard publish+validate vs
// EBR's collective counters vs QSBR's nothing) reproduces the cost ordering
// the paper's introduction argues from, and the torture tests show the
// scheme is safe — just not free.
//
// Like the paper's EBR variant, this implementation avoids thread-local
// storage: readers explicitly Acquire a Record (one hazard slot) and hold
// it for a batch of operations, which is the same discipline the paper's
// collective counters replace. Retired objects go to a domain-level list
// and are freed by Scan when no record's hazard points at them.
package hp

import (
	"sync"
	"sync/atomic"

	"rcuarray/internal/xsync"
)

// Domain manages hazard records and retired objects of type T.
type Domain[T any] struct {
	// records is a copy-on-write snapshot of every record ever created;
	// records are recycled through the free list rather than removed, as
	// in Michael's original (the list only grows to the high-water mark
	// of concurrent readers).
	records atomic.Pointer[[]*Record[T]]
	mu      sync.Mutex // guards record allocation and the retired list

	retired []retiredObj[T]
	// scanThreshold triggers a scan when the retired list reaches it.
	scanThreshold int

	scans xsync.PaddedUint64
	freed xsync.PaddedUint64
}

type retiredObj[T any] struct {
	ptr  *T
	free func()
}

// Record is one hazard slot. It is owned by at most one task between
// Acquire and Release; only the owner calls Protect/Clear.
type Record[T any] struct {
	hazard atomic.Pointer[T]
	active atomic.Bool
}

// New returns a domain. scanThreshold <= 0 selects a default of 64 retired
// objects per scan, amortizing the O(records) scan cost.
func New[T any](scanThreshold int) *Domain[T] {
	if scanThreshold <= 0 {
		scanThreshold = 64
	}
	d := &Domain[T]{scanThreshold: scanThreshold}
	empty := make([]*Record[T], 0)
	d.records.Store(&empty)
	return d
}

// Acquire claims a hazard record, recycling an inactive one if possible.
func (d *Domain[T]) Acquire() *Record[T] {
	for _, r := range *d.records.Load() {
		if !r.active.Load() && r.active.CompareAndSwap(false, true) {
			return r
		}
	}
	r := &Record[T]{}
	r.active.Store(true)
	d.mu.Lock()
	old := *d.records.Load()
	next := make([]*Record[T], len(old)+1)
	copy(next, old)
	next[len(old)] = r
	d.records.Store(&next)
	d.mu.Unlock()
	return r
}

// Release clears and returns the record for reuse.
func (r *Record[T]) Release() {
	r.hazard.Store(nil)
	r.active.Store(false)
}

// Protect reads src, publishes the value as this record's hazard, and
// re-validates that src still holds it (the classic publish+fence+validate
// loop). On return the object cannot be freed until Clear or the next
// Protect. This per-read overhead — a store and a second load of src, both
// sequentially consistent — is exactly the "balanced but noticeable
// overhead" the paper contrasts RCU against.
func (r *Record[T]) Protect(src *atomic.Pointer[T]) *T {
	for {
		p := src.Load()
		r.hazard.Store(p)
		if src.Load() == p {
			return p
		}
	}
}

// Clear drops the record's hazard.
func (r *Record[T]) Clear() { r.hazard.Store(nil) }

// Retire schedules free to run once no hazard protects ptr. When the
// retired list reaches the scan threshold, a scan runs inline (writer-side
// cost, like RCU's synchronize — but O(records + retired), not a wait).
func (d *Domain[T]) Retire(ptr *T, free func()) {
	d.mu.Lock()
	d.retired = append(d.retired, retiredObj[T]{ptr: ptr, free: free})
	shouldScan := len(d.retired) >= d.scanThreshold
	d.mu.Unlock()
	if shouldScan {
		d.Scan()
	}
}

// Scan frees every retired object no hazard currently protects and returns
// how many were freed.
func (d *Domain[T]) Scan() int {
	// Snapshot the hazards first: an object retired before a hazard could
	// be published to it can never gain a new hazard (it is unreachable),
	// so the snapshot is conservative and safe.
	hazards := make(map[*T]struct{})
	for _, r := range *d.records.Load() {
		if p := r.hazard.Load(); p != nil {
			hazards[p] = struct{}{}
		}
	}
	d.mu.Lock()
	var safe []retiredObj[T]
	keep := d.retired[:0]
	for _, ro := range d.retired {
		if _, protected := hazards[ro.ptr]; protected {
			keep = append(keep, ro)
		} else {
			safe = append(safe, ro)
		}
	}
	d.retired = keep
	d.mu.Unlock()

	for _, ro := range safe {
		ro.free()
	}
	d.scans.Inc()
	d.freed.Add(uint64(len(safe)))
	return len(safe)
}

// Records returns the number of hazard records ever created.
func (d *Domain[T]) Records() int { return len(*d.records.Load()) }

// Pending returns the current retired-list length.
func (d *Domain[T]) Pending() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.retired)
}

// Freed returns the total number of objects reclaimed.
func (d *Domain[T]) Freed() uint64 { return d.freed.Load() }

// Scans returns the total number of scans performed.
func (d *Domain[T]) Scans() uint64 { return d.scans.Load() }
