package hp

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rcuarray/internal/memory"
)

type obj struct {
	memory.Object
	v int
}

func TestAcquireReleaseRecycles(t *testing.T) {
	d := New[obj](0)
	r1 := d.Acquire()
	r2 := d.Acquire()
	if d.Records() != 2 {
		t.Fatalf("Records = %d, want 2", d.Records())
	}
	r1.Release()
	r3 := d.Acquire()
	if r3 != r1 {
		t.Fatal("released record not recycled")
	}
	r2.Release()
	r3.Release()
	if d.Records() != 2 {
		t.Fatalf("Records grew to %d", d.Records())
	}
}

func TestProtectPublishesHazard(t *testing.T) {
	d := New[obj](1000)
	var src atomic.Pointer[obj]
	o := &obj{v: 1}
	src.Store(o)

	r := d.Acquire()
	defer r.Release()
	got := r.Protect(&src)
	if got != o {
		t.Fatal("Protect returned wrong pointer")
	}
	// A retire now must not free the protected object.
	freed := false
	src.Store(&obj{v: 2})
	d.Retire(o, func() { freed = true })
	if n := d.Scan(); n != 0 || freed {
		t.Fatalf("scan freed a protected object (n=%d freed=%v)", n, freed)
	}
	r.Clear()
	if n := d.Scan(); n != 1 || !freed {
		t.Fatalf("scan after Clear freed %d, freed=%v", n, freed)
	}
}

func TestProtectRevalidates(t *testing.T) {
	// If src changes mid-protect the loop retries; simulate by racing a
	// swapper against protectors and requiring the returned pointer to
	// always equal a value src held *after* the hazard was published —
	// guaranteed by construction if no protected object is ever freed.
	d := New[obj](4)
	var src atomic.Pointer[obj]
	src.Store(&obj{})
	var stop atomic.Bool
	var violations atomic.Int64

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := d.Acquire()
			defer r.Release()
			for !stop.Load() {
				p := r.Protect(&src)
				p.CheckLive()
				for k := 0; k < 8; k++ {
					_ = p.v
				}
				p.CheckLive()
				r.Clear()
			}
		}()
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	writes := 0
	for time.Now().Before(deadline) {
		old := src.Load()
		src.Store(&obj{v: old.v + 1})
		d.Retire(old, func() { old.Retire() })
		writes++
	}
	stop.Store(true)
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d protected objects were freed", violations.Load())
	}
	if writes == 0 {
		t.Fatal("no writes")
	}
	// Final drain: all hazards cleared, everything reclaimable.
	d.Scan()
	if got := d.Pending(); got != 0 {
		t.Fatalf("Pending = %d after final scan", got)
	}
	t.Logf("writes=%d scans=%d freed=%d records=%d", writes, d.Scans(), d.Freed(), d.Records())
}

func TestScanThresholdTriggers(t *testing.T) {
	d := New[obj](4)
	for i := 0; i < 4; i++ {
		d.Retire(&obj{}, func() {})
	}
	if d.Scans() == 0 {
		t.Fatal("threshold scan never ran")
	}
	if d.Pending() != 0 {
		t.Fatalf("Pending = %d", d.Pending())
	}
}

func TestDefaultThreshold(t *testing.T) {
	d := New[obj](0)
	if d.scanThreshold != 64 {
		t.Fatalf("default threshold = %d", d.scanThreshold)
	}
}

func TestMultipleHazardsIndependent(t *testing.T) {
	d := New[obj](1000)
	var a, b atomic.Pointer[obj]
	oa, ob := &obj{v: 1}, &obj{v: 2}
	a.Store(oa)
	b.Store(ob)
	ra, rb := d.Acquire(), d.Acquire()
	defer ra.Release()
	defer rb.Release()
	ra.Protect(&a)
	rb.Protect(&b)

	freedA, freedB := false, false
	d.Retire(oa, func() { freedA = true })
	d.Retire(ob, func() { freedB = true })
	d.Scan()
	if freedA || freedB {
		t.Fatal("protected object freed")
	}
	ra.Clear()
	d.Scan()
	if !freedA || freedB {
		t.Fatalf("scan after one clear: freedA=%v freedB=%v", freedA, freedB)
	}
	rb.Clear()
	d.Scan()
	if !freedB {
		t.Fatal("second object never freed")
	}
}

// Release must drop the hazard: a record abandoned while protecting an
// object must not leak protection.
func TestReleaseClearsHazard(t *testing.T) {
	d := New[obj](1000)
	var src atomic.Pointer[obj]
	o := &obj{}
	src.Store(o)
	r := d.Acquire()
	r.Protect(&src)
	r.Release()
	freed := false
	d.Retire(o, func() { freed = true })
	d.Scan()
	if !freed {
		t.Fatal("released record still protected its object")
	}
}
