package locale

import (
	"sync/atomic"
	"testing"
)

// BenchmarkAblationPrivatization compares the privatized node-local lookup
// (chpl_getPrivatizedCopy) against a plain shared pointer dereference. The
// privatization layer is what keeps metadata access communication-free; this
// bench verifies its per-access cost is a few nanoseconds, not a reason to
// special-case the hot path.
func BenchmarkAblationPrivatization(b *testing.B) {
	type meta struct{ value int64 }
	c := NewCluster(Config{Locales: 2, WorkersPerLocale: 1})
	defer c.Shutdown()

	b.Run("privatized-lookup", func(b *testing.B) {
		c.Run(func(task *Task) {
			pid := Privatize(task, func(loc *Locale) any { return &meta{value: int64(loc.ID())} })
			var sink int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += GetPrivatized[*meta](task, pid).value
			}
			_ = sink
		})
	})
	b.Run("direct-pointer", func(b *testing.B) {
		m := &meta{value: 1}
		var sink int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sink += m.value
		}
		_ = sink
	})
}

// BenchmarkOnLocal measures an `on` targeting the current locale (free).
func BenchmarkOnLocal(b *testing.B) {
	c := NewCluster(Config{Locales: 2, WorkersPerLocale: 1})
	defer c.Shutdown()
	c.Run(func(task *Task) {
		var sink atomic.Int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			task.On(0, func(sub *Task) { sink.Add(1) })
		}
	})
}

// BenchmarkOnRemote measures an `on` targeting another locale (an active
// message round trip, uncharged latency in this configuration).
func BenchmarkOnRemote(b *testing.B) {
	c := NewCluster(Config{Locales: 2, WorkersPerLocale: 1})
	defer c.Shutdown()
	c.Run(func(task *Task) {
		var sink atomic.Int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			task.On(1, func(sub *Task) { sink.Add(1) })
		}
	})
}

// BenchmarkCoforall measures the per-resize replication fan-out cost.
func BenchmarkCoforall(b *testing.B) {
	for _, nl := range []int{2, 8} {
		nl := nl
		b.Run(map[int]string{2: "2locales", 8: "8locales"}[nl], func(b *testing.B) {
			c := NewCluster(Config{Locales: nl, WorkersPerLocale: 1})
			defer c.Shutdown()
			c.Run(func(task *Task) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					task.Coforall(func(sub *Task) {})
				}
			})
		})
	}
}

// BenchmarkGlobalLockHome measures lock ops from the home locale.
func BenchmarkGlobalLockHome(b *testing.B) {
	c := NewCluster(Config{Locales: 2, WorkersPerLocale: 1})
	defer c.Shutdown()
	lock := c.NewGlobalLock(0)
	c.Run(func(task *Task) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lock.Acquire(task)
			lock.Release(task)
		}
	})
}

// BenchmarkGlobalLockRemote measures lock ops from a non-home locale (the
// SyncArray degradation mechanism once latency is charged).
func BenchmarkGlobalLockRemote(b *testing.B) {
	c := NewCluster(Config{Locales: 2, WorkersPerLocale: 1})
	defer c.Shutdown()
	lock := c.NewGlobalLock(1)
	c.Run(func(task *Task) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lock.Acquire(task)
			lock.Release(task)
		}
	})
}
