package locale

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rcuarray/internal/comm"
	"rcuarray/internal/memory"
	"rcuarray/internal/obs"
	"rcuarray/internal/qsbr"
	"rcuarray/internal/tasking"
)

// Config sizes a cluster.
type Config struct {
	// Locales is the number of simulated nodes (the paper sweeps 2..32).
	Locales int
	// WorkersPerLocale is the size of each locale's task pool (the
	// paper's machines run 44). Defaults to 4.
	WorkersPerLocale int
	// Comm configures latency charging and accounting.
	Comm comm.Config
	// AutoCheckpoint makes every pool worker invoke a QSBR checkpoint
	// after each completed task — the "checkpoints placed at strategic
	// points in the runtime" option the paper leaves open (Section
	// III-B). Task boundaries are quiescent by construction, so this is
	// always safe; it trades per-task overhead for bounded reclamation
	// lag without any application cooperation.
	AutoCheckpoint bool
}

func (c Config) withDefaults() Config {
	if c.Locales <= 0 {
		c.Locales = 1
	}
	if c.WorkersPerLocale <= 0 {
		c.WorkersPerLocale = 4
	}
	return c
}

// Cluster is a simulated multi-locale system.
type Cluster struct {
	cfg    Config
	fabric *comm.Fabric
	qsbr   *qsbr.Domain
	obs    *obs.Registry
	parked *obs.Gauge
	// localOps/remoteOps back the remote-vs-local access ratio. They are
	// striped by task slot because every element access increments one of
	// them when observability is on; callers gate on obs.On() first.
	localOps  *obs.Striped
	remoteOps *obs.Striped

	locales []*Locale

	privMu  sync.Mutex
	nextPID atomic.Int64

	// nextSlot hands out execution slots to ephemeral tasks (pool tasks
	// use their worker index instead); see Task.Slot.
	nextSlot atomic.Int64

	shutdown atomic.Bool
}

// Locale is one simulated node: private memory (accounted via its Stats),
// a pool of workers, and a privatization table.
type Locale struct {
	id      int
	cluster *Cluster
	pool    *tasking.Pool
	mem     memory.Stats

	// priv is the locale's privatization table: a copy-on-write slice
	// indexed by PID. Lookups are a single atomic load plus an index —
	// the node-local, communication-free access the paper's privatization
	// exists to provide.
	priv atomic.Pointer[[]any]
}

// PID identifies a privatized object; the same PID indexes every locale's
// table (the paper's "privatization id ... used to access the privatized
// instance allocated on each node").
type PID int

// NewCluster starts a cluster.
func NewCluster(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{
		cfg:    cfg,
		fabric: comm.NewFabric(cfg.Locales, cfg.Comm),
		qsbr:   qsbr.New(),
		obs:    obs.NewRegistry(),
	}
	// Fold the cluster's existing exact counters into its registry as
	// read-on-export views, and track pool occupancy via the park hooks.
	c.qsbr.Observe(c.obs)
	c.fabric.Observe(c.obs)
	c.obs.Gauge("tasking_workers").Set(int64(cfg.Locales * cfg.WorkersPerLocale))
	c.parked = c.obs.Gauge("tasking_parked_workers")
	c.localOps = c.obs.StripedCounter("core_local_ops_total", cfg.Locales*cfg.WorkersPerLocale)
	c.remoteOps = c.obs.StripedCounter("core_remote_ops_total", cfg.Locales*cfg.WorkersPerLocale)
	c.obs.GaugeFunc("mem_live_blocks", func() int64 {
		var live int64
		for _, loc := range c.locales {
			live += loc.mem.Live()
		}
		return live
	})
	c.locales = make([]*Locale, cfg.Locales)
	for i := range c.locales {
		loc := &Locale{id: i, cluster: c}
		empty := make([]any, 0)
		loc.priv.Store(&empty)
		loc.pool = tasking.NewPool(
			fmt.Sprintf("locale-%d", i),
			cfg.WorkersPerLocale,
			tasking.Hooks{
				// Workers own QSBR participants: the paper's
				// runtime TLS. Parking a worker parks its
				// participant so an idle thread never stalls
				// reclamation.
				OnStart: func(w *tasking.Worker) { w.TLS = c.qsbr.Register() },
				OnPark: func(w *tasking.Worker) {
					w.TLS.(*qsbr.Participant).Park()
					// Park transitions are already slow (the worker is
					// about to block), so the occupancy gauge is kept
					// unconditionally — flipping obs on mid-run then
					// reads a correct value, not a skewed delta.
					c.parked.Add(1)
				},
				OnUnpark: func(w *tasking.Worker) {
					w.TLS.(*qsbr.Participant).Unpark()
					c.parked.Add(-1)
				},
				AfterTask: func(w *tasking.Worker) {
					if cfg.AutoCheckpoint {
						w.TLS.(*qsbr.Participant).Checkpoint()
					}
				},
				OnStop: func(w *tasking.Worker) {
					c.qsbr.Unregister(w.TLS.(*qsbr.Participant))
				},
			},
		)
		c.locales[i] = loc
	}
	return c
}

// NumLocales returns the number of locales.
func (c *Cluster) NumLocales() int { return c.cfg.Locales }

// WorkersPerLocale returns the per-locale pool size.
func (c *Cluster) WorkersPerLocale() int { return c.cfg.WorkersPerLocale }

// Locale returns locale i.
func (c *Cluster) Locale(i int) *Locale { return c.locales[i] }

// Fabric returns the communication fabric (for accounting assertions).
func (c *Cluster) Fabric() *comm.Fabric { return c.fabric }

// QSBR returns the cluster-wide QSBR domain installed in the runtime.
func (c *Cluster) QSBR() *qsbr.Domain { return c.qsbr }

// Obs returns the cluster's observability registry. Arrays built on the
// cluster and its fabric/QSBR views report here; the harness embeds its
// snapshot into BENCH JSON.
func (c *Cluster) Obs() *obs.Registry { return c.obs }


// Shutdown stops all locale pools. The cluster is unusable afterwards.
func (c *Cluster) Shutdown() {
	if !c.shutdown.CompareAndSwap(false, true) {
		return
	}
	for _, loc := range c.locales {
		loc.pool.Shutdown()
	}
}

// ID returns the locale's id.
func (l *Locale) ID() int { return l.id }

// Cluster returns the owning cluster.
func (l *Locale) Cluster() *Cluster { return l.cluster }

// MemStats returns the locale's allocator statistics.
func (l *Locale) MemStats() *memory.Stats { return &l.mem }

// Pool exposes the locale's task pool (tests and the harness use it).
func (l *Locale) Pool() *tasking.Pool { return l.pool }
