// Package locale is the PGAS (partitioned global address space) model the
// paper's RCUArray lives in: a Cluster of Locales, Chapel-style task
// parallelism (`on`, `coforall`), privatization of distributed objects, and
// a cluster-wide lock.
//
// The mapping from Chapel constructs to this package:
//
//	Chapel                          here
//	------------------------------  ------------------------------------
//	Locales / numLocales            Cluster.Locale(i) / Cluster.NumLocales
//	here                            Task.Here()
//	on Locales[i] do ...            Task.On(i, fn)
//	coforall loc in Locales do on   Task.Coforall(fn)
//	coforall t in 1..n (tasks)      Task.ForAllTasks(n, fn)
//	privatization / PID             Privatize / GetPrivatized
//	chpl_getPrivatizedCopy(PID)     GetPrivatized(task, pid)
//	sync var / cluster-wide lock    Cluster.NewGlobalLock(home)
//	implicit PUT/GET                Task.ChargeGet / Task.ChargePut
//
// The cluster is simulated in one address space (see DESIGN.md for why that
// substitution preserves the paper's behaviour): every locale's memory is
// directly reachable, but the fabric charges latency for, and counts, every
// remote operation, so locality mistakes are visible in both time and
// counters. Each locale runs a tasking.Pool whose workers own QSBR
// participants — the package wires the paper's "runtime support for QSBR"
// (Section III-B) into the task layer so that array code never manages
// participants explicitly.
package locale
