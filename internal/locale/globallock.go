package locale

import (
	"sync"

	"rcuarray/internal/comm"
)

// GlobalLock is the paper's cluster-wide WriteLock: "a lock that is wrapped
// in some class allocated on a single node, used to provide mutual exclusion
// with respect to all [locales]". Acquiring it from any locale other than
// its home costs an active-message round trip, which is why SyncArray both
// fails to scale and *degrades* as locales are added (Section V-A): every
// operation from (L-1)/L of the cluster pays the network to reach the lock.
type GlobalLock struct {
	cluster *Cluster
	home    int
	mu      sync.Mutex
}

// NewGlobalLock allocates a lock homed on the given locale.
func (c *Cluster) NewGlobalLock(home int) *GlobalLock {
	if home < 0 || home >= c.cfg.Locales {
		panic("locale: GlobalLock home out of range")
	}
	return &GlobalLock{cluster: c, home: home}
}

// Home returns the locale the lock lives on.
func (l *GlobalLock) Home() int { return l.home }

// Acquire takes the lock, charging the remote round trip when the caller is
// not on the home locale. While blocked the task's participant is parked so
// a convoying lock cannot stall QSBR reclamation.
func (l *GlobalLock) Acquire(t *Task) {
	l.cluster.fabric.ChargeRoundTrip(t.loc.id, l.home, comm.OpAM, 8)
	if l.mu.TryLock() {
		return
	}
	t.parked(l.mu.Lock)
}

// Release drops the lock, charging the release notification to the home
// locale when remote.
func (l *GlobalLock) Release(t *Task) {
	l.mu.Unlock()
	l.cluster.fabric.Charge(t.loc.id, l.home, comm.OpAM, 8)
}
