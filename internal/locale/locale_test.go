package locale

import (
	"sync"
	"sync/atomic"
	"testing"

	"rcuarray/internal/comm"
)

func newTestCluster(t *testing.T, locales, workers int) *Cluster {
	t.Helper()
	c := NewCluster(Config{Locales: locales, WorkersPerLocale: workers})
	t.Cleanup(c.Shutdown)
	return c
}

func TestClusterDefaults(t *testing.T) {
	c := NewCluster(Config{})
	defer c.Shutdown()
	if c.NumLocales() != 1 || c.WorkersPerLocale() != 4 {
		t.Fatalf("defaults: locales=%d workers=%d", c.NumLocales(), c.WorkersPerLocale())
	}
}

func TestRunExecutesOnLocaleZero(t *testing.T) {
	c := newTestCluster(t, 3, 2)
	ran := false
	c.Run(func(task *Task) {
		ran = true
		if task.Here().ID() != 0 {
			t.Errorf("driver on locale %d, want 0", task.Here().ID())
		}
		if task.QSBR() == nil {
			t.Error("driver has no QSBR participant")
		}
	})
	if !ran {
		t.Fatal("Run did not execute fn")
	}
}

func TestOnSwitchesHereAndCharges(t *testing.T) {
	c := newTestCluster(t, 4, 1)
	c.Run(func(task *Task) {
		task.On(2, func(sub *Task) {
			if sub.Here().ID() != 2 {
				t.Errorf("On(2) body here = %d", sub.Here().ID())
			}
			// The participant travels with the thread.
			if sub.QSBR() != task.QSBR() {
				t.Error("On body lost the caller's participant")
			}
		})
		// Local On is free.
		task.On(0, func(sub *Task) {
			if sub != task {
				t.Error("local On should reuse the same task")
			}
		})
	})
	if got := c.Fabric().TotalMsgs(comm.OpAM); got != 2 { // round trip to 2
		t.Fatalf("AM messages = %d, want 2", got)
	}
}

func TestCoforallVisitsEveryLocaleOnce(t *testing.T) {
	c := newTestCluster(t, 5, 1)
	var visited [5]atomic.Int64
	c.Run(func(task *Task) {
		task.Coforall(func(sub *Task) {
			visited[sub.Here().ID()].Add(1)
		})
	})
	for i := range visited {
		if got := visited[i].Load(); got != 1 {
			t.Errorf("locale %d visited %d times", i, got)
		}
	}
	// 4 remote spawns + 4 completions.
	if got := c.Fabric().TotalMsgs(comm.OpAM); got != 8 {
		t.Fatalf("AM messages = %d, want 8", got)
	}
}

func TestCoforallBodiesHaveDistinctParticipants(t *testing.T) {
	c := newTestCluster(t, 3, 1)
	var mu sync.Mutex
	parts := make(map[any]bool)
	c.Run(func(task *Task) {
		task.Coforall(func(sub *Task) {
			mu.Lock()
			parts[sub.QSBR()] = true
			mu.Unlock()
		})
	})
	if len(parts) != 3 {
		t.Fatalf("distinct participants = %d, want 3", len(parts))
	}
}

func TestForAllTasksRunsOnPoolWorkers(t *testing.T) {
	c := newTestCluster(t, 2, 3)
	var onWorker atomic.Int64
	c.Run(func(task *Task) {
		task.On(1, func(sub *Task) {
			sub.ForAllTasks(10, func(tt *Task, i int) {
				if tt.worker != nil && tt.worker.Pool == c.Locale(1).Pool() {
					onWorker.Add(1)
				}
				if tt.Here().ID() != 1 {
					t.Errorf("task %d on locale %d, want 1", i, tt.Here().ID())
				}
			})
		})
	})
	if got := onWorker.Load(); got != 10 {
		t.Fatalf("%d/10 tasks ran on pool workers", got)
	}
}

func TestForAllTasksFromOwnPoolPanics(t *testing.T) {
	c := newTestCluster(t, 1, 2)
	panicked := make(chan bool, 1)
	c.Run(func(task *Task) {
		task.ForAllTasks(1, func(tt *Task, _ int) {
			defer func() { panicked <- recover() != nil }()
			tt.ForAllTasks(1, func(*Task, int) {})
		})
	})
	if !<-panicked {
		t.Fatal("nested ForAllTasks on the same pool did not panic")
	}
}

func TestPrivatizationIsNodeLocal(t *testing.T) {
	type meta struct{ home int }
	c := newTestCluster(t, 4, 1)
	c.Run(func(task *Task) {
		pid := Privatize(task, func(loc *Locale) any { return &meta{home: loc.ID()} })
		task.Coforall(func(sub *Task) {
			m := GetPrivatized[*meta](sub, pid)
			if m.home != sub.Here().ID() {
				t.Errorf("locale %d got instance for %d", sub.Here().ID(), m.home)
			}
		})
		// A second privatized object gets a distinct PID.
		pid2 := Privatize(task, func(loc *Locale) any { return &meta{home: -1} })
		if pid2 == pid {
			t.Error("PIDs collided")
		}
		count := 0
		EachPrivatized[*meta](c, pid2, func(loc *Locale, m *meta) {
			if m.home != -1 {
				t.Errorf("wrong instance via EachPrivatized")
			}
			count++
		})
		if count != 4 {
			t.Errorf("EachPrivatized visited %d locales, want 4", count)
		}
	})
	// GET/PUT free: privatized access is node-local.
	if got := c.Fabric().TotalMsgs(comm.OpGet) + c.Fabric().TotalMsgs(comm.OpPut); got != 0 {
		t.Fatalf("privatized lookups cost %d GET/PUT messages", got)
	}
}

func TestGetPrivatizedWrongTypePanics(t *testing.T) {
	c := newTestCluster(t, 1, 1)
	c.Run(func(task *Task) {
		pid := Privatize(task, func(loc *Locale) any { return "a string" })
		defer func() {
			if recover() == nil {
				t.Error("wrong-type GetPrivatized did not panic")
			}
		}()
		GetPrivatized[*int](task, pid)
	})
}

func TestGlobalLockMutualExclusion(t *testing.T) {
	c := newTestCluster(t, 3, 2)
	lock := c.NewGlobalLock(0)
	if lock.Home() != 0 {
		t.Fatalf("Home = %d", lock.Home())
	}
	var inside atomic.Int64
	var maxInside atomic.Int64
	c.Run(func(task *Task) {
		task.Coforall(func(sub *Task) {
			for i := 0; i < 20; i++ {
				lock.Acquire(sub)
				if n := inside.Add(1); n > maxInside.Load() {
					maxInside.Store(n)
				}
				inside.Add(-1)
				lock.Release(sub)
			}
		})
	})
	if got := maxInside.Load(); got != 1 {
		t.Fatalf("lock admitted %d holders", got)
	}
	// Remote acquisitions were charged (2 of 3 locales are remote).
	if got := c.Fabric().TotalMsgs(comm.OpAM); got == 0 {
		t.Fatal("no AM traffic recorded for remote lock operations")
	}
}

func TestGlobalLockHomeValidation(t *testing.T) {
	c := newTestCluster(t, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range home did not panic")
		}
	}()
	c.NewGlobalLock(2)
}

func TestChargeGetPutAccounting(t *testing.T) {
	c := newTestCluster(t, 2, 1)
	c.Run(func(task *Task) {
		task.ChargeGet(1, 8)
		task.ChargePut(1, 16)
		task.ChargeGet(0, 8) // local: free
	})
	f := c.Fabric()
	if f.TotalMsgs(comm.OpGet) != 1 || f.TotalBytes(comm.OpGet) != 8 {
		t.Fatalf("GET accounting: %d msgs %d bytes", f.TotalMsgs(comm.OpGet), f.TotalBytes(comm.OpGet))
	}
	if f.TotalMsgs(comm.OpPut) != 1 || f.TotalBytes(comm.OpPut) != 16 {
		t.Fatalf("PUT accounting: %d msgs %d bytes", f.TotalMsgs(comm.OpPut), f.TotalBytes(comm.OpPut))
	}
}

func TestWorkerParticipantsParkWhenIdle(t *testing.T) {
	c := newTestCluster(t, 1, 2)
	// After the pool goes idle, its workers park; a driver deferral can
	// then be reclaimed by the driver alone.
	c.Run(func(task *Task) {
		freed := false
		task.QSBR().Defer(func() { freed = true })
		// Workers may briefly be unparked; retry until they settle.
		for i := 0; i < 1000 && !freed; i++ {
			task.Checkpoint()
		}
		if !freed {
			t.Error("idle workers stalled reclamation (never parked)")
		}
	})
}

func TestShutdownIdempotent(t *testing.T) {
	c := NewCluster(Config{Locales: 2})
	c.Shutdown()
	c.Shutdown()
}

func TestQSBRDomainSharedAcrossLocales(t *testing.T) {
	c := newTestCluster(t, 3, 2)
	// 3 locales x 2 workers register at pool start.
	if got := c.QSBR().Participants(); got != 6 {
		t.Fatalf("participants = %d, want 6", got)
	}
}

// With AutoCheckpoint, pool tasks reclaim deferred memory at task boundaries
// without any explicit checkpoint calls — the "runtime-injected checkpoints"
// option from the paper's Section III-B discussion.
func TestAutoCheckpointReclaimsAtTaskBoundary(t *testing.T) {
	c := NewCluster(Config{Locales: 1, WorkersPerLocale: 2, AutoCheckpoint: true})
	defer c.Shutdown()
	var freed atomic.Bool
	c.Run(func(task *Task) {
		task.ForAllTasks(1, func(tt *Task, _ int) {
			tt.QSBR().Defer(func() { freed.Store(true) })
			// No explicit checkpoint here.
		})
		// The deferral becomes safe once the worker's post-task
		// checkpoint runs and the driver (the only other active
		// participant) checkpoints.
		for i := 0; i < 1000 && !freed.Load(); i++ {
			task.Checkpoint()
			task.ForAllTasks(1, func(*Task, int) {})
		}
	})
	if !freed.Load() {
		t.Fatal("AutoCheckpoint never reclaimed the task's deferral")
	}
}
