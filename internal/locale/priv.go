package locale

import "fmt"

// Privatize allocates one instance of a distributed object per locale by
// running factory on each locale and installing the results in every
// locale's privatization table under a fresh PID. It models Chapel's
// privatization: afterwards, GetPrivatized on any locale is a node-local
// lookup with no communication (the paper relies on this for both data types
// in Listing 1).
//
// factory runs once per locale, in locale order, on the caller's thread;
// privatization happens at data-structure construction time, which the paper
// excludes from all measurements.
func Privatize(t *Task, factory func(loc *Locale) any) PID {
	c := t.loc.cluster
	c.privMu.Lock()
	defer c.privMu.Unlock()
	pid := PID(c.nextPID.Add(1) - 1)
	for _, loc := range c.locales {
		inst := factory(loc)
		old := *loc.priv.Load()
		next := make([]any, len(old)+1)
		copy(next, old)
		next[len(old)] = inst
		if len(next) != int(pid)+1 {
			panic(fmt.Sprintf("locale: privatization table skew on locale %d: len=%d pid=%d",
				loc.id, len(next), pid))
		}
		loc.priv.Store(&next)
	}
	return pid
}

// GetPrivatized returns the calling locale's instance for pid — the
// chpl_getPrivatizedCopy of Algorithm 3 line 4. It is communication-free:
// one atomic load and an index into the local table.
func GetPrivatized[T any](t *Task, pid PID) T {
	table := *t.loc.priv.Load()
	inst, ok := table[pid].(T)
	if !ok {
		panic(fmt.Sprintf("locale: privatized object %d has type %T, not the requested type", pid, table[pid]))
	}
	return inst
}

// EachPrivatized visits every locale's instance for pid (used by teardown
// and by tests asserting replica consistency). It does not charge
// communication: it is a meta-operation, not part of any measured path.
func EachPrivatized[T any](c *Cluster, pid PID, visit func(loc *Locale, inst T)) {
	for _, loc := range c.locales {
		table := *loc.priv.Load()
		visit(loc, table[pid].(T))
	}
}
