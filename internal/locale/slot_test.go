package locale

import (
	"sync"
	"sync/atomic"
	"testing"
)

// Pool tasks get their worker's slot in [0, WorkersPerLocale), and no two
// *concurrently running* tasks on one locale share a slot — the property
// that makes slots usable as reader-counter stripe names. (The mapping
// from logical task id to worker — and hence slot — is scheduling-order
// dependent.)
func TestForAllTasksSlotsDisjointWhileRunning(t *testing.T) {
	const workers = 4
	c := newTestCluster(t, 2, workers)
	c.Run(func(task *Task) {
		task.Coforall(func(sub *Task) {
			inUse := make([]atomic.Int32, workers)
			ran := 0
			var mu sync.Mutex
			sub.ForAllTasks(2*workers, func(tt *Task, id int) {
				slot := tt.Slot()
				if slot < 0 || slot >= workers {
					t.Errorf("locale %d task %d: slot %d outside [0,%d)", sub.Here().ID(), id, slot, workers)
					return
				}
				if !inUse[slot].CompareAndSwap(0, 1) {
					t.Errorf("locale %d task %d: slot %d already held by a running task", sub.Here().ID(), id, slot)
				}
				defer inUse[slot].Store(0)
				mu.Lock()
				ran++
				mu.Unlock()
			})
			if ran != 2*workers {
				t.Errorf("locale %d: %d tasks ran, want %d", sub.Here().ID(), ran, 2*workers)
			}
		})
	})
}

// Ephemeral tasks (Run drivers and the like) get cluster-assigned slots at
// or above WorkersPerLocale — they never collide with a pool worker's
// stripe — and distinct concurrent drivers get distinct slots.
func TestEphemeralTaskSlotsAboveWorkers(t *testing.T) {
	const workers = 3
	c := newTestCluster(t, 1, workers)
	var mu sync.Mutex
	var slots []int
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Run(func(task *Task) {
				mu.Lock()
				slots = append(slots, task.Slot())
				mu.Unlock()
			})
		}()
	}
	wg.Wait()
	seen := map[int]bool{}
	for _, s := range slots {
		if s < workers {
			t.Errorf("ephemeral task slot %d collides with pool worker range [0,%d)", s, workers)
		}
		if seen[s] {
			t.Errorf("duplicate ephemeral slot %d", s)
		}
		seen[s] = true
	}
}

// On keeps the caller's slot: a task hopping locales stays on its stripe.
func TestOnPreservesSlot(t *testing.T) {
	c := newTestCluster(t, 3, 2)
	c.Run(func(task *Task) {
		want := task.Slot()
		task.On(2, func(sub *Task) {
			if got := sub.Slot(); got != want {
				t.Errorf("slot after On = %d, want %d", got, want)
			}
			sub.On(1, func(inner *Task) {
				if got := inner.Slot(); got != want {
					t.Errorf("slot after nested On = %d, want %d", got, want)
				}
			})
		})
	})
}
