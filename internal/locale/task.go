package locale

import (
	"sync"

	"rcuarray/internal/comm"
	"rcuarray/internal/qsbr"
	"rcuarray/internal/tasking"
)

// Task is an execution context: which locale the code is (logically) running
// on — Chapel's `here` — plus the QSBR participant of the underlying thread.
// Tasks are passed explicitly because Go, like Chapel user code, has no TLS;
// this explicitness is the Go rendering of what Chapel's compiler threads
// through implicitly.
type Task struct {
	loc    *Locale
	part   *qsbr.Participant
	worker *tasking.Worker // nil for ephemeral (non-pool) tasks
	slot   int
}

// Here returns the locale the task is executing on.
func (t *Task) Here() *Locale { return t.loc }

// Slot returns the task's execution slot: the worker index for pool tasks,
// or a cluster-assigned id for ephemeral (driver/coforall) tasks. Slots name
// reader-counter stripes in the EBR domains — two tasks with distinct slots
// never contend on a stripe as long as the stripe count covers the slot
// range — and are stable for the task's lifetime.
func (t *Task) Slot() int { return t.slot }

// Cluster returns the owning cluster.
func (t *Task) Cluster() *Cluster { return t.loc.cluster }

// QSBR returns the task's QSBR participant (the worker's TLS, or the
// ephemeral participant for driver/coforall tasks).
func (t *Task) QSBR() *qsbr.Participant { return t.part }

// Checkpoint invokes a QSBR checkpoint on the task's participant. This is
// the user-facing "strategic checkpoint placement" knob of Section V-B.
func (t *Task) Checkpoint() int { return t.part.Checkpoint() }

// Run executes fn as the program's driver task. The driver is an ephemeral
// task homed on locale 0 with its own registered participant (it models
// Chapel's main task). Run blocks until fn returns.
func (c *Cluster) Run(fn func(*Task)) {
	t := c.newEphemeralTask(c.locales[0])
	defer t.release()
	fn(t)
}

// newEphemeralTask creates a task with a freshly registered participant.
// Ephemeral tasks draw slots from a cluster-wide counter, offset past the
// worker indices so they do not pile onto the pool workers' stripes.
func (c *Cluster) newEphemeralTask(loc *Locale) *Task {
	slot := c.cfg.WorkersPerLocale + int(c.nextSlot.Add(1)-1)
	return &Task{loc: loc, part: c.qsbr.Register(), slot: slot}
}

// release retires an ephemeral task's participant. Pending deferrals are
// orphaned to the domain (drained by any later checkpoint).
func (t *Task) release() {
	t.loc.cluster.qsbr.Unregister(t.part)
}

// parked runs fn with the task's participant parked, so that a task blocked
// waiting on children never stalls reclamation — the tasking-layer park
// assistance of Section III-B applied to fork/join waits.
func (t *Task) parked(fn func()) {
	t.part.Park()
	defer t.part.Unpark()
	fn()
}

// On runs fn on locale dst, blocking until it completes — Chapel's
// `on Locales[dst] do ...`. The body runs on the caller's thread (so it
// keeps the caller's participant) with `here` rebound; a remote target is
// charged an active-message round trip.
func (t *Task) On(dst int, fn func(*Task)) {
	target := t.loc.cluster.locales[dst]
	if target == t.loc {
		fn(t)
		return
	}
	t.loc.cluster.fabric.ChargeRoundTrip(t.loc.id, dst, comm.OpAM, 0)
	sub := &Task{loc: target, part: t.part, worker: t.worker, slot: t.slot}
	fn(sub)
}

// Coforall runs fn once per locale, in parallel, and waits for all bodies —
// Chapel's `coforall loc in Locales do on loc`. Each body is an ephemeral
// task with its own participant homed on its locale; remote spawns are
// charged an active message each. The parent parks while waiting.
func (t *Task) Coforall(fn func(*Task)) {
	c := t.loc.cluster
	var wg sync.WaitGroup
	launch := func(loc *Locale) {
		wg.Add(1)
		if loc != t.loc {
			c.fabric.Charge(t.loc.id, loc.id, comm.OpAM, 0)
		}
		go func() {
			defer wg.Done()
			sub := c.newEphemeralTask(loc)
			defer sub.release()
			fn(sub)
			if loc != t.loc {
				// Completion notification back to the parent.
				c.fabric.Charge(loc.id, t.loc.id, comm.OpAM, 0)
			}
		}()
	}
	for _, loc := range c.locales {
		launch(loc)
	}
	t.parked(wg.Wait)
}

// ForAllTasks runs n tasks on the current locale's worker pool and waits —
// Chapel's `coforall i in 1..n`. Bodies execute on pool workers and use the
// workers' persistent participants, which is what makes the Figure 4
// checkpoint-frequency experiment meaningful (a worker that never
// checkpoints stalls reclamation until it parks).
//
// ForAllTasks must not be called from a task already running on this
// locale's pool (the wait could starve the pool); driver and coforall tasks
// are ephemeral, so the intended call pattern is safe.
func (t *Task) ForAllTasks(n int, fn func(*Task, int)) {
	loc := t.loc
	if t.worker != nil && t.worker.Pool == loc.pool {
		panic("locale: ForAllTasks from a worker of the same pool")
	}
	t.parked(func() {
		loc.pool.ForAll(n, func(w *tasking.Worker, i int) {
			sub := &Task{loc: loc, part: w.TLS.(*qsbr.Participant), worker: w, slot: w.ID}
			fn(sub, i)
		})
	})
}

// ChargeGet accounts for reading size bytes from the locale owning the data.
func (t *Task) ChargeGet(owner, size int) {
	t.loc.cluster.fabric.Charge(t.loc.id, owner, comm.OpGet, size)
}

// ChargePut accounts for writing size bytes to the locale owning the data.
func (t *Task) ChargePut(owner, size int) {
	t.loc.cluster.fabric.Charge(t.loc.id, owner, comm.OpPut, size)
}
