package locale

import (
	"sync"

	"rcuarray/internal/comm"
	"rcuarray/internal/qsbr"
	"rcuarray/internal/tasking"
)

// Task is an execution context: which locale the code is (logically) running
// on — Chapel's `here` — plus the QSBR participant of the underlying thread.
// Tasks are passed explicitly because Go, like Chapel user code, has no TLS;
// this explicitness is the Go rendering of what Chapel's compiler threads
// through implicitly.
type Task struct {
	loc    *Locale
	part   *qsbr.Participant
	worker *tasking.Worker // nil for ephemeral (non-pool) tasks
	slot   int
	ops    *taskOps
}

// taskOps batches a task's remote-vs-local access tallies. The fields are
// plain integers because exactly one goroutine writes them: the struct is
// owned by the task, and an On() sub-task shares its parent's pointer but
// runs on the parent's thread. Batching keeps the enabled element hot path
// at two plain increments; the shared striped counters absorb one atomic
// add per opsFlushEvery accesses instead of one per access, which is the
// difference between ~2% and ~10% read-path overhead.
type taskOps struct {
	local, remote uint32
}

// opsFlushEvery bounds how many accesses a task may tally before folding
// them into the cluster counters (and thus how stale a live /metrics read
// of the remote-vs-local ratio can be).
const opsFlushEvery = 256

// NoteLocalOp and NoteRemoteOp record one element access for the
// remote-vs-local ratio. Hot path: callers gate on obs.On() so the disabled
// cost is the caller's single branch.
func (t *Task) NoteLocalOp() {
	t.ops.local++
	if t.ops.local+t.ops.remote >= opsFlushEvery {
		t.flushOps()
	}
}

// NoteRemoteOp records one remote element access; see NoteLocalOp.
func (t *Task) NoteRemoteOp() {
	t.ops.remote++
	if t.ops.local+t.ops.remote >= opsFlushEvery {
		t.flushOps()
	}
}

// flushOps folds the batched tallies into the cluster's striped counters.
// The stripe key is the globally unique (locale, slot) pair — striping by
// slot alone would alias same-slot tasks on different locales onto one
// cache line, and the resulting contention dominates the read path.
func (t *Task) flushOps() {
	c := t.loc.cluster
	key := t.loc.id*c.cfg.WorkersPerLocale + t.slot
	if t.ops.local > 0 {
		c.localOps.Add(key, uint64(t.ops.local))
		t.ops.local = 0
	}
	if t.ops.remote > 0 {
		c.remoteOps.Add(key, uint64(t.ops.remote))
		t.ops.remote = 0
	}
}

// Here returns the locale the task is executing on.
func (t *Task) Here() *Locale { return t.loc }

// Slot returns the task's execution slot: the worker index for pool tasks,
// or a cluster-assigned id for ephemeral (driver/coforall) tasks. Slots name
// reader-counter stripes in the EBR domains — two tasks with distinct slots
// never contend on a stripe as long as the stripe count covers the slot
// range — and are stable for the task's lifetime.
func (t *Task) Slot() int { return t.slot }

// Cluster returns the owning cluster.
func (t *Task) Cluster() *Cluster { return t.loc.cluster }

// QSBR returns the task's QSBR participant (the worker's TLS, or the
// ephemeral participant for driver/coforall tasks).
func (t *Task) QSBR() *qsbr.Participant { return t.part }

// Checkpoint invokes a QSBR checkpoint on the task's participant. This is
// the user-facing "strategic checkpoint placement" knob of Section V-B.
func (t *Task) Checkpoint() int { return t.part.Checkpoint() }

// Run executes fn as the program's driver task. The driver is an ephemeral
// task homed on locale 0 with its own registered participant (it models
// Chapel's main task). Run blocks until fn returns.
func (c *Cluster) Run(fn func(*Task)) {
	t := c.newEphemeralTask(c.locales[0])
	defer t.release()
	fn(t)
}

// newEphemeralTask creates a task with a freshly registered participant.
// Ephemeral tasks draw slots from a cluster-wide counter, offset past the
// worker indices so they do not pile onto the pool workers' stripes.
func (c *Cluster) newEphemeralTask(loc *Locale) *Task {
	slot := c.cfg.WorkersPerLocale + int(c.nextSlot.Add(1)-1)
	return &Task{loc: loc, part: c.qsbr.Register(), slot: slot, ops: &taskOps{}}
}

// release retires an ephemeral task's participant. Pending deferrals are
// orphaned to the domain (drained by any later checkpoint); batched access
// tallies are folded in so no counts die with the task.
func (t *Task) release() {
	t.flushOps()
	t.loc.cluster.qsbr.Unregister(t.part)
}

// parked runs fn with the task's participant parked, so that a task blocked
// waiting on children never stalls reclamation — the tasking-layer park
// assistance of Section III-B applied to fork/join waits.
func (t *Task) parked(fn func()) {
	t.part.Park()
	defer t.part.Unpark()
	fn()
}

// On runs fn on locale dst, blocking until it completes — Chapel's
// `on Locales[dst] do ...`. The body runs on the caller's thread (so it
// keeps the caller's participant) with `here` rebound; a remote target is
// charged an active-message round trip.
func (t *Task) On(dst int, fn func(*Task)) {
	target := t.loc.cluster.locales[dst]
	if target == t.loc {
		fn(t)
		return
	}
	t.loc.cluster.fabric.ChargeRoundTrip(t.loc.id, dst, comm.OpAM, 0)
	sub := &Task{loc: target, part: t.part, worker: t.worker, slot: t.slot, ops: t.ops}
	fn(sub)
}

// Coforall runs fn once per locale, in parallel, and waits for all bodies —
// Chapel's `coforall loc in Locales do on loc`. Each body is an ephemeral
// task with its own participant homed on its locale; remote spawns are
// charged an active message each. The parent parks while waiting.
func (t *Task) Coforall(fn func(*Task)) {
	c := t.loc.cluster
	var wg sync.WaitGroup
	launch := func(loc *Locale) {
		wg.Add(1)
		if loc != t.loc {
			c.fabric.Charge(t.loc.id, loc.id, comm.OpAM, 0)
		}
		go func() {
			defer wg.Done()
			sub := c.newEphemeralTask(loc)
			defer sub.release()
			fn(sub)
			if loc != t.loc {
				// Completion notification back to the parent.
				c.fabric.Charge(loc.id, t.loc.id, comm.OpAM, 0)
			}
		}()
	}
	for _, loc := range c.locales {
		launch(loc)
	}
	t.parked(wg.Wait)
}

// ForAllTasks runs n tasks on the current locale's worker pool and waits —
// Chapel's `coforall i in 1..n`. Bodies execute on pool workers and use the
// workers' persistent participants, which is what makes the Figure 4
// checkpoint-frequency experiment meaningful (a worker that never
// checkpoints stalls reclamation until it parks).
//
// ForAllTasks must not be called from a task already running on this
// locale's pool (the wait could starve the pool); driver and coforall tasks
// are ephemeral, so the intended call pattern is safe.
func (t *Task) ForAllTasks(n int, fn func(*Task, int)) {
	loc := t.loc
	if t.worker != nil && t.worker.Pool == loc.pool {
		panic("locale: ForAllTasks from a worker of the same pool")
	}
	t.parked(func() {
		loc.pool.ForAll(n, func(w *tasking.Worker, i int) {
			sub := &Task{loc: loc, part: w.TLS.(*qsbr.Participant), worker: w, slot: w.ID, ops: &taskOps{}}
			fn(sub, i)
			sub.flushOps()
		})
	})
}

// ChargeGet accounts for reading size bytes from the locale owning the data.
func (t *Task) ChargeGet(owner, size int) {
	t.loc.cluster.fabric.Charge(t.loc.id, owner, comm.OpGet, size)
}

// ChargePut accounts for writing size bytes to the locale owning the data.
func (t *Task) ChargePut(owner, size int) {
	t.loc.cluster.fabric.Charge(t.loc.id, owner, comm.OpPut, size)
}
