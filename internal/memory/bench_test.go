package memory

import "testing"

// BenchmarkAllocFreeRecycled measures the steady-state block cycle: every
// Alloc is served from the free list (how RCUArray's Shrink→Grow behaves).
func BenchmarkAllocFreeRecycled(b *testing.B) {
	var st Stats
	p := NewPool[int64](0, 1024, &st)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := p.Alloc()
		p.Free(blk)
	}
}

// BenchmarkAllocFresh measures cold allocation (free list empty).
func BenchmarkAllocFresh(b *testing.B) {
	var st Stats
	p := NewPool[int64](0, 1024, &st)
	blocks := make([]*Block[int64], 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blocks = append(blocks, p.Alloc())
	}
	b.StopTimer()
	for _, blk := range blocks {
		p.Free(blk)
	}
}

// BenchmarkCheckLive measures the use-after-free tripwire on the element
// access path (two of these per RCUArray operation).
func BenchmarkCheckLive(b *testing.B) {
	var o Object
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.CheckLive()
	}
}
