package memory

// Block is a fixed-capacity chunk of elements, the unit of both allocation
// and distribution in RCUArray (the paper's `Block` with capacity BlockSize).
// A block is owned by exactly one locale; accesses from other locales are
// remote PUT/GET operations, which the locale layer accounts for.
//
// Blocks embed Object so that the recycling scheme of Section III-C is
// checkable: a block referenced by any snapshot must be live, and recycling
// moves the *pointer* between snapshots without ever retiring the block.
type Block[T any] struct {
	Object
	// Owner is the id of the locale whose memory holds Data.
	Owner int
	// Data holds the elements. Its length equals the pool's block size and
	// never changes after allocation.
	Data []T
}

// Cap returns the block's element capacity.
func (b *Block[T]) Cap() int { return len(b.Data) }

// poisonValue is stored into freed blocks' slots when the pool poisons
// them, so a reader that holds a stale reference into a *freed* (not
// recycled) block observes garbage deterministically in tests.
func poison[T any]() T {
	var zero T
	return zero
}
