// Package memory provides the manual memory-management substrate the paper
// assumes: Chapel has no garbage collector, so reclaiming a snapshot while a
// reader still holds it is a real use-after-free. Go's GC would silently mask
// that failure mode ("GC dulls the reclamation point"), so this package
// restores it:
//
//   - Block[T] values are allocated from per-locale Pool[T] free lists and
//     explicitly freed back. A freed block is poisoned.
//   - Object is an embeddable lifecycle tag (live → retired) with double-free
//     and use-after-free detection; snapshots embed it so that an EBR/QSBR
//     bug that reclaims a visible snapshot is *detected* by torture tests
//     rather than absorbed by the GC.
//   - Stats counts allocations, frees, free-list recycling, and live objects,
//     which the Lemma-1 test ("at most two active snapshots") reads.
//
// All checks are always on; they are cheap (one atomic load) relative to the
// operations they guard.
package memory
