package memory

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestObjectLifecycle(t *testing.T) {
	var o Object
	if !o.Live() {
		t.Fatal("new object not live")
	}
	o.CheckLive() // must not panic
	o.Retire()
	if o.Live() {
		t.Fatal("retired object reported live")
	}
	o.Resurrect()
	if !o.Live() {
		t.Fatal("resurrected object not live")
	}
	if got := o.Generation(); got != 1 {
		t.Fatalf("Generation = %d, want 1", got)
	}
}

func TestObjectDoubleRetirePanics(t *testing.T) {
	var o Object
	o.Retire()
	assertPanics(t, "double retire", func() { o.Retire() })
}

func TestObjectResurrectLivePanics(t *testing.T) {
	var o Object
	assertPanics(t, "resurrect live", func() { o.Resurrect() })
}

func TestObjectCheckLivePanicsAfterRetire(t *testing.T) {
	var o Object
	o.Retire()
	assertPanics(t, "use after free", func() { o.CheckLive() })
}

func TestPoolAllocFree(t *testing.T) {
	var st Stats
	p := NewPool[int64](3, 8, &st)
	if p.BlockSize() != 8 || p.Owner() != 3 {
		t.Fatalf("pool metadata wrong: size=%d owner=%d", p.BlockSize(), p.Owner())
	}
	b := p.Alloc()
	if b.Owner != 3 || b.Cap() != 8 {
		t.Fatalf("block metadata wrong: owner=%d cap=%d", b.Owner, b.Cap())
	}
	if !b.Live() {
		t.Fatal("allocated block not live")
	}
	b.Data[0] = 42
	p.Free(b)
	if b.Live() {
		t.Fatal("freed block still live")
	}
	if b.Data[0] != 0 {
		t.Fatalf("freed block not poisoned: Data[0]=%d", b.Data[0])
	}
	if st.Allocs() != 1 || st.Frees() != 1 || st.Live() != 0 {
		t.Fatalf("stats wrong: allocs=%d frees=%d live=%d", st.Allocs(), st.Frees(), st.Live())
	}
}

func TestPoolRecycles(t *testing.T) {
	var st Stats
	p := NewPool[int](0, 4, &st)
	b1 := p.Alloc()
	p.Free(b1)
	if got := p.FreeListLen(); got != 1 {
		t.Fatalf("FreeListLen = %d, want 1", got)
	}
	b2 := p.Alloc()
	if b2 != b1 {
		t.Fatal("pool did not recycle the freed block")
	}
	if !b2.Live() {
		t.Fatal("recycled block not live")
	}
	if got := b2.Generation(); got != 1 {
		t.Fatalf("recycled block generation = %d, want 1", got)
	}
	if st.Recycled() != 1 {
		t.Fatalf("Recycled = %d, want 1", st.Recycled())
	}
}

func TestPoolDoubleFreePanics(t *testing.T) {
	var st Stats
	p := NewPool[int](0, 4, &st)
	b := p.Alloc()
	p.Free(b)
	assertPanics(t, "double free", func() { p.Free(b) })
}

func TestPoolSizeMismatchPanics(t *testing.T) {
	var st Stats
	p4 := NewPool[int](0, 4, &st)
	p8 := NewPool[int](0, 8, &st)
	b := p4.Alloc()
	assertPanics(t, "size mismatch", func() { p8.Free(b) })
}

func TestNewPoolValidation(t *testing.T) {
	var st Stats
	assertPanics(t, "zero block size", func() { NewPool[int](0, 0, &st) })
	assertPanics(t, "nil stats", func() { NewPool[int](0, 4, nil) })
}

func TestStatsLiveMax(t *testing.T) {
	var st Stats
	p := NewPool[byte](0, 16, &st)
	blocks := make([]*Block[byte], 10)
	for i := range blocks {
		blocks[i] = p.Alloc()
	}
	for _, b := range blocks {
		p.Free(b)
	}
	if got := st.LiveMax(); got != 10 {
		t.Fatalf("LiveMax = %d, want 10", got)
	}
	if got := st.Live(); got != 0 {
		t.Fatalf("Live = %d, want 0", got)
	}
}

func TestPoolConcurrentAllocFree(t *testing.T) {
	var st Stats
	p := NewPool[int](0, 4, &st)
	const workers = 8
	const rounds = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				b := p.Alloc()
				b.Data[0] = i
				p.Free(b)
			}
		}()
	}
	wg.Wait()
	if st.Allocs() != workers*rounds || st.Frees() != workers*rounds {
		t.Fatalf("allocs=%d frees=%d, want %d each", st.Allocs(), st.Frees(), workers*rounds)
	}
	if st.Live() != 0 {
		t.Fatalf("Live = %d, want 0", st.Live())
	}
}

// Property: after any interleaved sequence of allocs and frees, live count
// equals allocs-frees and every outstanding block is live while every freed
// block is retired.
func TestPoolAccountingProperty(t *testing.T) {
	f := func(ops []bool) bool {
		var st Stats
		p := NewPool[int](1, 2, &st)
		var outstanding []*Block[int]
		allocs, frees := 0, 0
		for _, alloc := range ops {
			if alloc || len(outstanding) == 0 {
				outstanding = append(outstanding, p.Alloc())
				allocs++
			} else {
				b := outstanding[len(outstanding)-1]
				outstanding = outstanding[:len(outstanding)-1]
				p.Free(b)
				frees++
			}
		}
		if st.Live() != int64(allocs-frees) {
			return false
		}
		for _, b := range outstanding {
			if !b.Live() {
				return false
			}
		}
		return st.Allocs() == uint64(allocs) && st.Frees() == uint64(frees)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic, got none", name)
		}
	}()
	fn()
}
