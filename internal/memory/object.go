package memory

import (
	"fmt"
	"sync/atomic"
)

// Object lifecycle states.
const (
	// StateLive marks an object that has been allocated and not yet
	// retired. Zero value on purpose: a freshly constructed object is live.
	StateLive int32 = iota
	// StateRetired marks an object that has been handed to a reclaimer
	// (its memory must no longer be dereferenced by new readers).
	StateRetired
)

// Object is an embeddable lifecycle tag used to detect reclamation bugs.
// The paper's algorithms are correct exactly when no reader ever touches an
// object after it has been retired; embedding Object and calling CheckLive on
// every read-side access turns a violation into an immediate panic.
type Object struct {
	state atomic.Int32
	gen   atomic.Uint32
}

// Retire transitions the object from live to retired. It panics on a double
// retire, which corresponds to the paper's writer freeing the same snapshot
// twice (impossible under a correctly held WriteLock).
func (o *Object) Retire() {
	if !o.state.CompareAndSwap(StateLive, StateRetired) {
		panic("memory: double retire (object already reclaimed)")
	}
}

// Resurrect returns a retired object to the live state, bumping its
// generation. Pools call this when recycling from a free list.
func (o *Object) Resurrect() {
	if !o.state.CompareAndSwap(StateRetired, StateLive) {
		panic("memory: resurrect of live object (free-list corruption)")
	}
	o.gen.Add(1)
}

// Live reports whether the object is currently live.
func (o *Object) Live() bool { return o.state.Load() == StateLive }

// Generation returns the recycle generation, incremented every time the
// object is resurrected from a free list. Torture tests snapshot the
// generation with a reference and detect ABA-style recycling hazards.
func (o *Object) Generation() uint32 { return o.gen.Load() }

// CheckLive panics if the object has been retired. This is the
// use-after-free detector: read-side code calls it after linearizing, so a
// reclaimer that runs too early trips it deterministically.
func (o *Object) CheckLive() {
	if o.state.Load() != StateLive {
		panic(fmt.Sprintf("memory: use after free (object state=%d)", o.state.Load()))
	}
}
