package memory

import (
	"fmt"
	"sync"
)

// Pool allocates fixed-size blocks for one locale. Frees push onto a LIFO
// free list; allocations pop from it, so steady-state resizing recycles
// memory instead of growing the heap — the property the paper credits for
// RCUArray's 4x resize advantage (no deep copy, no fresh storage).
//
// The free list is guarded by a mutex: allocation happens only under the
// cluster-wide WriteLock (resizes) or at construction, never on the
// read/update fast path, so this lock is not contended in any benchmark.
type Pool[T any] struct {
	mu        sync.Mutex
	free      []*Block[T]
	blockSize int
	owner     int
	stats     *Stats
}

// NewPool returns a pool that allocates blocks of blockSize elements owned by
// locale owner. stats may be shared across pools; it must be non-nil.
func NewPool[T any](owner, blockSize int, stats *Stats) *Pool[T] {
	if blockSize <= 0 {
		panic(fmt.Sprintf("memory: invalid block size %d", blockSize))
	}
	if stats == nil {
		panic("memory: NewPool requires non-nil stats")
	}
	return &Pool[T]{blockSize: blockSize, owner: owner, stats: stats}
}

// BlockSize returns the element capacity of blocks from this pool.
func (p *Pool[T]) BlockSize() int { return p.blockSize }

// Owner returns the owning locale id.
func (p *Pool[T]) Owner() int { return p.owner }

// Alloc returns a live block, recycling from the free list when possible.
func (p *Pool[T]) Alloc() *Block[T] {
	p.mu.Lock()
	var b *Block[T]
	if n := len(p.free); n > 0 {
		b = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
	}
	p.mu.Unlock()
	if b != nil {
		b.Resurrect()
		p.stats.NoteAlloc(true)
		return b
	}
	b = &Block[T]{Owner: p.owner, Data: make([]T, p.blockSize)}
	p.stats.NoteAlloc(false)
	return b
}

// Free retires the block and returns it to the free list. The block must
// have come from a pool with the same block size. Freeing a block twice
// panics (double free), as does freeing a block while it is already retired.
func (p *Pool[T]) Free(b *Block[T]) {
	if len(b.Data) != p.blockSize {
		panic(fmt.Sprintf("memory: freeing block of size %d into pool of size %d", len(b.Data), p.blockSize))
	}
	b.Retire()
	// Poison the payload so stale readers observe zeroed data in tests
	// that inspect values (state checks catch them first in debug paths).
	pz := poison[T]()
	for i := range b.Data {
		b.Data[i] = pz
	}
	p.stats.NoteFree()
	p.mu.Lock()
	p.free = append(p.free, b)
	p.mu.Unlock()
}

// FreeListLen returns the current number of blocks parked on the free list.
func (p *Pool[T]) FreeListLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}
