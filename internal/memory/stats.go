package memory

import "rcuarray/internal/xsync"

// Stats aggregates allocator activity. One Stats value is shared by all the
// pools of a locale (or of a test), so the counters are padded to avoid
// false sharing between the hot Alloc/Free paths and unrelated state.
type Stats struct {
	allocs   xsync.PaddedUint64 // total Alloc calls
	frees    xsync.PaddedUint64 // total Free calls
	recycled xsync.PaddedUint64 // Allocs served from a free list
	live     xsync.PaddedInt64  // currently live objects
	liveMax  xsync.PaddedInt64  // high-water mark of live (approximate under races)
}

// NoteAlloc records an allocation; fromFreeList marks a free-list hit.
func (s *Stats) NoteAlloc(fromFreeList bool) {
	s.allocs.Inc()
	if fromFreeList {
		s.recycled.Inc()
	}
	n := s.live.Add(1)
	// High-water update is racy-by-design: a concurrent stale store can
	// only under-report, never corrupt, and tests read it after quiescing.
	if n > s.liveMax.Load() {
		s.liveMax.Store(n)
	}
}

// NoteFree records a deallocation.
func (s *Stats) NoteFree() {
	s.frees.Inc()
	s.live.Add(-1)
}

// Allocs returns the total number of allocations.
func (s *Stats) Allocs() uint64 { return s.allocs.Load() }

// Frees returns the total number of frees.
func (s *Stats) Frees() uint64 { return s.frees.Load() }

// Recycled returns how many allocations were served from a free list.
func (s *Stats) Recycled() uint64 { return s.recycled.Load() }

// Live returns the number of currently live objects.
func (s *Stats) Live() int64 { return s.live.Load() }

// LiveMax returns the high-water mark of simultaneously live objects.
func (s *Stats) LiveMax() int64 { return s.liveMax.Load() }
