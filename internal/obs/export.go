package obs

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event format ("JSON Object
// Format"), loadable in chrome://tracing and Perfetto. Timestamps are
// microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Cat   string         `json:"cat,omitempty"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	ID    string         `json:"id,omitempty"`
	Bp    string         `json:"bp,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteTrace writes the tracer's stable events as Chrome trace-event JSON.
//
// Ring wraparound can leave a track with an E whose B was overwritten (or a
// B whose E has not happened yet); an unbalanced pair renders as a slice
// that swallows the rest of the track, so unmatched events are dropped
// here: per track, an E with no open B of the same name is discarded, and
// Bs still open at the end are discarded (innermost first, since slices on
// one track nest).
func (t *Tracer) WriteTrace(w io.Writer) error {
	events := t.Events()

	keep := make([]bool, len(events))
	stacks := make(map[[2]int][]int) // track -> indices of open B events
	for i, e := range events {
		k := [2]int{e.Pid, e.Tid}
		switch e.Phase {
		case PhaseBegin:
			stacks[k] = append(stacks[k], i)
		case PhaseEnd:
			st := stacks[k]
			// Pop to the innermost open B with this name; anything above
			// it never got an E (its end slot was overwritten) and must
			// also be dropped to keep nesting balanced.
			matched := -1
			for j := len(st) - 1; j >= 0; j-- {
				if events[st[j]].Name == e.Name {
					matched = j
					break
				}
			}
			if matched < 0 {
				continue // orphan E: its B was overwritten
			}
			keep[st[matched]] = true
			keep[i] = true
			stacks[k] = st[:matched]
		case PhaseInstant, PhaseComplete:
			keep[i] = true
		}
	}

	out := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for i, e := range events {
		if !keep[i] {
			continue
		}
		out.TraceEvents = append(out.TraceEvents, toChrome(e))
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// toChrome converts one stable ring event to its Chrome trace-event form.
// 'X' events carry their duration (Arg, nanoseconds) in dur and their span
// id in args, so a single-process dump still shows which RPC a slice was.
func toChrome(e TraceEvent) chromeEvent {
	ce := chromeEvent{
		Name:  e.Name,
		Phase: string(rune(e.Phase)),
		Ts:    float64(e.TsNanos) / 1e3,
		Pid:   e.Pid,
		Tid:   e.Tid,
	}
	switch e.Phase {
	case PhaseInstant:
		ce.Scope = "t"
		if e.Arg != 0 {
			ce.Args = map[string]any{"v": e.Arg}
		}
	case PhaseComplete:
		ce.Dur = float64(e.Arg) / 1e3
		if e.ID != 0 {
			ce.Args = map[string]any{"span": spanIDString(e.ID)}
		}
	}
	return ce
}
