package obs

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is the fixed bucket count: bucket b holds observations v with
// bits.Len64(v) == b+1, i.e. v in [2^b, 2^(b+1)). 64 log2 buckets cover the
// full uint64 nanosecond range, so Observe never clamps on real latencies.
const histBuckets = 64

// Histogram is a fixed-bucket log2 latency histogram safe for concurrent
// Observe and Snapshot. Observations are nanoseconds. It is write-cheap (two
// atomic adds plus a max CAS) and meant for slow paths — grace periods,
// resize phases, RPC round-trips — not per-element reads. A nil *Histogram
// is a no-op.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// bucketOf maps an observation to its log2 bucket.
func bucketOf(v uint64) int {
	if v == 0 {
		return 0
	}
	return bits.Len64(v) - 1
}

// Observe records a duration in nanoseconds. Negative values clamp to zero.
func (h *Histogram) Observe(ns int64) {
	if h == nil {
		return
	}
	v := uint64(0)
	if ns > 0 {
		v = uint64(ns)
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// CountOver returns how many observations fell at or above ns, resolved at
// bucket granularity: ns rounds DOWN to its bucket's lower bound, so the
// estimate errs pessimistic (counts the whole containing bucket), matching
// the quantile convention. SLO thresholds that are powers of two are exact.
func (h *Histogram) CountOver(ns int64) uint64 {
	if h == nil {
		return 0
	}
	v := uint64(0)
	if ns > 0 {
		v = uint64(ns)
	}
	var n uint64
	for b := bucketOf(v); b < histBuckets; b++ {
		n += h.buckets[b].Load()
	}
	return n
}

// reset zeroes the histogram in place (registry Reset; not concurrency-safe
// against writers).
func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// HistSnap is a point-in-time view of a histogram: totals plus quantiles
// estimated at bucket upper bounds (pessimistic, like harness.Histogram).
type HistSnap struct {
	Count    uint64 `json:"count"`
	SumNanos uint64 `json:"sum_ns"`
	MaxNanos uint64 `json:"max_ns"`
	P50      uint64 `json:"p50_ns"`
	P90      uint64 `json:"p90_ns"`
	P99      uint64 `json:"p99_ns"`
}

// Snap returns a point-in-time view. Under concurrent writers the view is
// approximate (buckets are read one at a time) but never torn per-word.
func (h *Histogram) Snap() HistSnap {
	if h == nil {
		return HistSnap{}
	}
	var b [histBuckets]uint64
	var n uint64
	for i := range h.buckets {
		b[i] = h.buckets[i].Load()
		n += b[i]
	}
	s := HistSnap{Count: n, SumNanos: h.sum.Load(), MaxNanos: h.max.Load()}
	s.P50 = quantile(&b, n, 0.50)
	s.P90 = quantile(&b, n, 0.90)
	s.P99 = quantile(&b, n, 0.99)
	return s
}

// quantile returns the upper bound of the bucket containing rank q*n. An
// upper bound is reported so the estimate errs pessimistic, matching the
// harness histogram convention.
func quantile(b *[histBuckets]uint64, n uint64, q float64) uint64 {
	if n == 0 {
		return 0
	}
	rank := uint64(q * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var seen uint64
	for i := range b {
		seen += b[i]
		if seen > rank {
			if i == histBuckets-1 {
				return ^uint64(0)
			}
			return (uint64(1) << (uint(i) + 1)) - 1
		}
	}
	return 0
}
