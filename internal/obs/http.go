package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4). Counter and striped-counter names should follow
// the _total convention; histograms are exported as summaries (quantile
// series plus _sum and _count). Labels embedded in registered names
// ("x_total{op=\"GET\"}") pass through verbatim; the # TYPE line uses the
// base name left of '{'.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	snap := r.Snapshot()

	typed := make(map[string]bool)
	emitType := func(name, typ string) {
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(bw, "# TYPE %s %s\n", base, typ)
		}
	}

	for _, name := range sortedKeys(snap.Counters) {
		emitType(name, "counter")
		fmt.Fprintf(bw, "%s %d\n", name, snap.Counters[name])
	}
	for _, name := range sortedKeys(snap.Gauges) {
		emitType(name, "gauge")
		fmt.Fprintf(bw, "%s %d\n", name, snap.Gauges[name])
	}
	for _, name := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[name]
		base, labels := splitLabels(name)
		emitType(base, "summary")
		for _, q := range []struct {
			q string
			v uint64
		}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.99", h.P99}} {
			fmt.Fprintf(bw, "%s{%squantile=%q} %d\n", base, labels, q.q, q.v)
		}
		fmt.Fprintf(bw, "%s_sum%s %d\n", base, bracedOrEmpty(labels), h.SumNanos)
		fmt.Fprintf(bw, "%s_count%s %d\n", base, bracedOrEmpty(labels), h.Count)
	}
	return bw.Flush()
}

// splitLabels splits a registered name into its base and an inner label
// list ready to prepend more labels to: `x{a="b"}` -> ("x", `a="b",`).
func splitLabels(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	inner := strings.TrimSuffix(name[i+1:], "}")
	if inner == "" {
		return name[:i], ""
	}
	return name[:i], inner + ","
}

// bracedOrEmpty re-wraps a non-empty inner label list in braces.
func bracedOrEmpty(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + strings.TrimSuffix(labels, ",") + "}"
}

// Handler returns an http.Handler serving the standard observability
// endpoints for this registry:
//
//	/metrics      Prometheus text exposition
//	/debug/vars   expvar-style JSON snapshot
//	/debug/trace  Chrome trace-event JSON (open in Perfetto)
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.Tracer().WriteTrace(w)
	})
	return mux
}
