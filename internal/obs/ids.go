package obs

import "sync/atomic"

// Span and trace identifiers. IDs come from a seeded SplitMix64 stream, not
// from the wall clock or math/rand, so two runs of a seeded workload assign
// the same ids to the same logical operations and a chaos replay reproduces
// the trace topology byte for byte. This file is pure function-of-seed and
// contains no timestamps; it is safe for deterministic-domain callers.

// splitmix64 is the same generator the comm fault streams use: one round of
// the SplitMix64 output function.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SpanSource generates non-zero span/trace ids from a seed. Next draws from
// a shared atomic counter — deterministic while callers are sequential (the
// driver's lease serializes resizes, so Grow ids replay exactly); concurrent
// callers should derive a per-operation sub-stream with DeriveSpan instead.
type SpanSource struct {
	seed uint64
	n    atomic.Uint64
}

// NewSpanSource returns a source whose id sequence is a pure function of
// seed.
func NewSpanSource(seed uint64) *SpanSource {
	return &SpanSource{seed: seed}
}

// Next returns the next id in the stream. Ids are never zero (zero means
// "untraced" on the wire).
func (s *SpanSource) Next() uint64 {
	for {
		if id := splitmix64(s.seed + s.n.Add(1)); id != 0 {
			return id
		}
	}
}

// DeriveSpan returns the k-th child id of a parent id: a pure function of
// (parent, k), so spans fanned out concurrently (Grow's block allocations,
// a bulk batch's per-node groups) get replay-stable ids no matter how the
// goroutines interleave.
func DeriveSpan(parent uint64, k int) uint64 {
	id := splitmix64(parent ^ splitmix64(uint64(k)+1))
	if id == 0 {
		id = 1
	}
	return id
}

// spanIDString formats a span id the way the Chrome trace format's id field
// expects (a short hex string).
func spanIDString(id uint64) string {
	const hexdigits = "0123456789abcdef"
	var b [18]byte
	b[0], b[1] = '0', 'x'
	n := 2
	started := false
	for i := 15; i >= 0; i-- {
		d := (id >> (4 * i)) & 0xf
		if !started && d == 0 && i > 0 {
			continue
		}
		started = true
		b[n] = hexdigits[d]
		n++
	}
	return string(b[:n])
}
