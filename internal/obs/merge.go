package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Cluster trace merging: fold the driver's rings and every node's dumped
// rings into ONE Perfetto-loadable timeline.
//
// Two problems make naive concatenation wrong, and both bit the original
// `rcudist -trace-out` (which only wrote driver-local rings anyway):
//
//   - Names: rings intern span names per tracer, so NameID 3 is
//     "node.install" on one node and "handle.GET" on another. Dumps
//     therefore carry resolved name strings (TraceEvent.Name), never ids,
//     and merging keys nothing on interned ids.
//   - Tracks: every tracer numbers its pids from its own conventions (node
//     ids, comm track constants), so two nodes' tracks collide. The merge
//     re-homes each dump's tracks into a fresh pid block and emits
//     process_name metadata, so Perfetto shows one process group per node.
//
// Timestamps are per-tracer clocks; the collector estimates each node's
// offset from RPC round-trip midpoints (see dist.Driver.TraceProbe) and the
// merge applies it, which orders cross-node events to within RTT/2.
//
// Causality is drawn with Chrome flow events: a client RPC span ('X', span
// id set) and its node-side handler span share the id, so the merge emits a
// flow step 's' at the client span and a binding 'f' (bp:"e") at the
// handler span. A span id seen on only one side is an orphan — the other
// ring wrapped past it, or a peer ran without a registry — and is counted,
// not silently dropped: the CI gate asserts zero.

// NodeDump is one remote tracer's stable events, shifted onto the
// collector's clock by OffsetNanos (node clock + offset = local clock).
type NodeDump struct {
	Label       string // process label in the merged file, e.g. "node1"
	OffsetNanos int64
	Events      []TraceEvent
}

// MergeStats summarizes a merged cluster trace for gating.
type MergeStats struct {
	Events      int // events written (metadata excluded)
	FlowArrows  int // client→handler links drawn
	OrphanSpans int // id'd spans whose counterpart is missing
}

// mergedPidStride separates each dump's pid namespace in the merged file.
const mergedPidStride = 1 << 20

// WriteClusterTrace merges the local tracer's events with the collected
// node dumps and writes one Chrome trace-event JSON file. The local dump is
// process 0; node i is process i+1. Flow arrows link equal span ids across
// dumps, earliest span first.
func WriteClusterTrace(w io.Writer, local []TraceEvent, localLabel string, nodes []NodeDump) (MergeStats, error) {
	dumps := make([]NodeDump, 0, len(nodes)+1)
	dumps = append(dumps, NodeDump{Label: localLabel, Events: local})
	dumps = append(dumps, nodes...)

	var stats MergeStats
	out := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}

	// One merged event list, pids re-homed per dump, offsets applied.
	type spanRef struct {
		ev    chromeEvent
		local bool // from the local (driver) dump
	}
	spans := make(map[uint64][]spanRef) // span id -> X events carrying it
	for di, d := range dumps {
		base := di * mergedPidStride
		pidsSeen := map[int]bool{}
		// Balance B/E pairs per dump exactly like the single-tracer export,
		// so a wrapped ring cannot swallow a track in the merged view.
		for _, e := range balance(d.Events) {
			ce := toChrome(e)
			ce.Pid = base + e.Pid
			ce.Ts += float64(d.OffsetNanos) / 1e3
			pidsSeen[ce.Pid] = true
			out.TraceEvents = append(out.TraceEvents, ce)
			stats.Events++
			if e.Phase == PhaseComplete && e.ID != 0 {
				spans[e.ID] = append(spans[e.ID], spanRef{ev: ce, local: di == 0})
			}
		}
		pids := make([]int, 0, len(pidsSeen))
		for p := range pidsSeen {
			pids = append(pids, p)
		}
		sort.Ints(pids)
		for _, p := range pids {
			name := d.Label
			if orig := p - base; orig != 0 {
				name = fmt.Sprintf("%s/track%d", d.Label, orig)
			}
			out.TraceEvents = append(out.TraceEvents,
				chromeEvent{Name: "process_name", Phase: "M", Pid: p,
					Args: map[string]any{"name": name}},
				chromeEvent{Name: "process_sort_index", Phase: "M", Pid: p,
					Args: map[string]any{"sort_index": di}})
		}
	}

	// Flow arrows: within one id group, the earliest span (client side,
	// since a request is sent before it is handled and offsets are good to
	// RTT/2) is the source; every other span binds to it.
	ids := make([]uint64, 0, len(spans))
	for id := range spans {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		group := spans[id]
		if len(group) < 2 {
			stats.OrphanSpans++
			continue
		}
		sort.Slice(group, func(i, j int) bool { return group[i].ev.Ts < group[j].ev.Ts })
		src := group[0].ev
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: src.Name, Phase: "s", Cat: "rpc", ID: spanIDString(id),
			Ts: src.Ts, Pid: src.Pid, Tid: src.Tid,
		})
		for _, dst := range group[1:] {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: src.Name, Phase: "f", Cat: "rpc", Bp: "e", ID: spanIDString(id),
				Ts: dst.ev.Ts, Pid: dst.ev.Pid, Tid: dst.ev.Tid,
			})
			stats.FlowArrows++
		}
	}

	enc := json.NewEncoder(w)
	return stats, enc.Encode(out)
}

// balance drops unmatched B/E events per track (ring wrap debris), keeping
// instants and complete events — the same discipline as Tracer.WriteTrace,
// applied to an already-snapshotted dump.
func balance(events []TraceEvent) []TraceEvent {
	keep := make([]bool, len(events))
	stacks := make(map[[2]int][]int)
	for i, e := range events {
		k := [2]int{e.Pid, e.Tid}
		switch e.Phase {
		case PhaseBegin:
			stacks[k] = append(stacks[k], i)
		case PhaseEnd:
			st := stacks[k]
			matched := -1
			for j := len(st) - 1; j >= 0; j-- {
				if events[st[j]].Name == e.Name {
					matched = j
					break
				}
			}
			if matched < 0 {
				continue
			}
			keep[st[matched]] = true
			keep[i] = true
			stacks[k] = st[:matched]
		default:
			keep[i] = true
		}
	}
	out := make([]TraceEvent, 0, len(events))
	for i, e := range events {
		if keep[i] {
			out = append(out, e)
		}
	}
	return out
}
