package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func decodeChrome(t *testing.T, b []byte) []map[string]any {
	t.Helper()
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	return out.TraceEvents
}

// TestClusterMergeOffsetsRecoverOrdering merges a client span with its node
// handler span under a synthetic clock skew: the node's raw clock reads
// *earlier* than the client's, but the probe-estimated offset must put the
// handler after the request on the merged timeline, and the pair must link
// with one flow arrow and no orphans.
func TestClusterMergeOffsetsRecoverOrdering(t *testing.T) {
	const spanID = 0xABCD
	local := []TraceEvent{
		{Pid: 0, Tid: 0, TsNanos: 1_000_000, Name: "rpc.AM", Phase: PhaseComplete, Arg: 500_000, ID: spanID},
	}
	// Node clock started 5ms after the client's: its raw timestamp (100µs) is
	// far earlier than the client span's; OffsetNanos repairs it.
	node := NodeDump{
		Label:       "node0",
		OffsetNanos: 5_000_000,
		Events: []TraceEvent{
			{Pid: 3, Tid: 0, TsNanos: 100_000, Name: "handle.AM", Phase: PhaseComplete, Arg: 200_000, ID: spanID},
		},
	}

	var buf bytes.Buffer
	stats, err := WriteClusterTrace(&buf, local, "driver", []NodeDump{node})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != 2 || stats.FlowArrows != 1 || stats.OrphanSpans != 0 {
		t.Fatalf("stats = %+v, want 2 events, 1 flow arrow, 0 orphans", stats)
	}

	var reqTs, handleTs float64
	var sawS, sawF bool
	for _, e := range decodeChrome(t, buf.Bytes()) {
		switch e["ph"] {
		case "X":
			if e["name"] == "rpc.AM" {
				reqTs = e["ts"].(float64)
			}
			if e["name"] == "handle.AM" {
				handleTs = e["ts"].(float64)
			}
		case "s":
			sawS = true
			if pid := int(e["pid"].(float64)); pid != 0 {
				t.Errorf("flow source on pid %d, want the client span's pid 0", pid)
			}
		case "f":
			sawF = true
			if pid := int(e["pid"].(float64)); pid != mergedPidStride+3 {
				t.Errorf("flow binding on pid %d, want re-homed node pid %d", pid, mergedPidStride+3)
			}
		}
	}
	if !sawS || !sawF {
		t.Fatalf("flow pair missing: s=%v f=%v", sawS, sawF)
	}
	if handleTs <= reqTs {
		t.Fatalf("offset did not recover ordering: handler at %.1fµs <= request at %.1fµs", handleTs, reqTs)
	}
	if want := (100_000 + 5_000_000) / 1e3; handleTs != want {
		t.Fatalf("handler ts %.3fµs, want offset-shifted %.3fµs", handleTs, want)
	}
}

// TestClusterMergeOrphanCounted: a span id seen on only one side is counted,
// not linked.
func TestClusterMergeOrphanCounted(t *testing.T) {
	local := []TraceEvent{
		{Pid: 0, Tid: 0, TsNanos: 10, Name: "rpc.GET", Phase: PhaseComplete, Arg: 5, ID: 7},
	}
	var buf bytes.Buffer
	stats, err := WriteClusterTrace(&buf, local, "driver", nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FlowArrows != 0 || stats.OrphanSpans != 1 {
		t.Fatalf("stats = %+v, want 0 arrows, 1 orphan", stats)
	}
}

// TestClusterMergeNameAndPidIsolation pins the two merge hazards: every dump
// carries resolved name strings (no cross-tracer NameID bleed), and dumps
// whose tracks use the same pid land in disjoint merged pid blocks with their
// own process_name metadata.
func TestClusterMergeNameAndPidIsolation(t *testing.T) {
	// Both dumps use pid 0, and on each tracer "its" NameID 0 resolved to a
	// different string — exactly the collision interning would cause.
	a := NodeDump{Label: "node0", Events: []TraceEvent{
		{Pid: 0, Tid: 0, TsNanos: 1, Name: "node.install", Phase: PhaseInstant},
	}}
	b := NodeDump{Label: "node1", Events: []TraceEvent{
		{Pid: 0, Tid: 0, TsNanos: 2, Name: "handle.GET", Phase: PhaseInstant},
	}}
	var buf bytes.Buffer
	if _, err := WriteClusterTrace(&buf, nil, "driver", []NodeDump{a, b}); err != nil {
		t.Fatal(err)
	}
	procNames := map[int]string{}
	eventPids := map[string]int{}
	for _, e := range decodeChrome(t, buf.Bytes()) {
		pid := int(e["pid"].(float64))
		if e["ph"] == "M" && e["name"] == "process_name" {
			procNames[pid] = e["args"].(map[string]any)["name"].(string)
			continue
		}
		if e["ph"] == "i" {
			eventPids[e["name"].(string)] = pid
		}
	}
	if eventPids["node.install"] != 1*mergedPidStride || eventPids["handle.GET"] != 2*mergedPidStride {
		t.Fatalf("pids not re-homed per dump: %v", eventPids)
	}
	if procNames[1*mergedPidStride] != "node0" || procNames[2*mergedPidStride] != "node1" {
		t.Fatalf("process names wrong: %v", procNames)
	}
}

// TestClusterMergeDeterministic: same input, same bytes — the replay gate
// depends on stable iteration order in the exporter.
func TestClusterMergeDeterministic(t *testing.T) {
	mk := func() ([]TraceEvent, []NodeDump) {
		local := []TraceEvent{
			{Pid: 0, Tid: 1, TsNanos: 5, Name: "rpc.AM", Phase: PhaseComplete, Arg: 2, ID: 3},
			{Pid: 0, Tid: 1, TsNanos: 9, Name: "rpc.GET", Phase: PhaseComplete, Arg: 2, ID: 4},
		}
		nodes := []NodeDump{{Label: "node0", Events: []TraceEvent{
			{Pid: 1, Tid: 0, TsNanos: 6, Name: "handle.AM", Phase: PhaseComplete, Arg: 1, ID: 3},
			{Pid: 1, Tid: 0, TsNanos: 10, Name: "handle.GET", Phase: PhaseComplete, Arg: 1, ID: 4},
		}}}
		return local, nodes
	}
	var b1, b2 bytes.Buffer
	l1, n1 := mk()
	if _, err := WriteClusterTrace(&b1, l1, "driver", n1); err != nil {
		t.Fatal(err)
	}
	l2, n2 := mk()
	if _, err := WriteClusterTrace(&b2, l2, "driver", n2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("identical inputs produced different merged traces")
	}
}

func TestSpanSourceDeterminism(t *testing.T) {
	a, b := NewSpanSource(99), NewSpanSource(99)
	for i := 0; i < 100; i++ {
		ia, ib := a.Next(), b.Next()
		if ia != ib {
			t.Fatalf("draw %d: %x != %x", i, ia, ib)
		}
		if ia == 0 {
			t.Fatal("SpanSource produced id 0")
		}
	}
	if NewSpanSource(100).Next() == NewSpanSource(99).Next() {
		t.Fatal("different seeds produced the same first id")
	}
}

func TestDeriveSpanPure(t *testing.T) {
	seen := map[uint64]bool{}
	for k := 0; k < 64; k++ {
		id := DeriveSpan(0xFEED, k)
		if id == 0 {
			t.Fatalf("child %d is zero", k)
		}
		if seen[id] {
			t.Fatalf("child %d collides", k)
		}
		seen[id] = true
		if id != DeriveSpan(0xFEED, k) {
			t.Fatalf("DeriveSpan not pure at k=%d", k)
		}
	}
}
