// Package obs is the unified observability core: atomic counters, gauges,
// fixed-bucket latency histograms, and per-task trace-event rings, all
// registered by name in a Registry and exported as a Prometheus text page,
// an expvar-style JSON snapshot, or a Chrome trace-event JSON file.
//
// Design rules (see DESIGN.md "Observability"):
//
//   - Hot paths pay one predictable branch when observability is off: every
//     instrumentation site is gated on On(), a single package-global
//     atomic.Bool load. No timestamps are taken and no counters touched
//     until it returns true.
//   - Enabled hot paths are allocation-free: handles (Counter, Gauge,
//     Histogram, Ring) are resolved once at construction time and stored in
//     the instrumented object; the per-event cost is one or two atomic adds.
//     time.Now is reserved for slow paths (grace periods, resizes, RPCs).
//   - All handle methods tolerate a nil receiver (no-op), so optional wiring
//     never needs nil checks at the call site.
//   - Metric names follow Prometheus conventions and may carry labels
//     inline: "comm_rpc_ns{op=\"GET\",peer=\"n1\"}". The registry treats the
//     full string as the identity; exporters split base name from labels.
//
// obs reads the wall clock (time.Now) and is therefore explicitly OUTSIDE
// the seed-replayable deterministic domain enforced by the seedpure
// analyzer; deterministic-domain files must not import it (rcuvet flags
// the import).
package obs

import "sync/atomic"

// enabled is the single global switch. Off by default: an un-opted-in run
// pays one atomic load + branch per instrumentation site and nothing else.
var enabled atomic.Bool

// On reports whether observability is enabled. Instrumentation sites gate on
// it before taking timestamps or touching counters.
func On() bool { return enabled.Load() }

// SetEnabled flips the global switch. It is safe to call at any time, but
// counters accumulated while enabled are not rewound by disabling; use
// Registry.Reset for A/B runs.
func SetEnabled(v bool) { enabled.Store(v) }

// Default is the process-global registry. Package-scoped instrumentation
// (ebr, qsbr defaults) registers here; components that can have several
// instances per process (dist nodes, locale clusters) create their own
// registries so tests and co-located nodes do not share counters.
var Default = NewRegistry()

// Count returns (creating if needed) a counter in the Default registry.
func Count(name string) *Counter { return Default.Counter(name) }

// Gaug returns (creating if needed) a gauge in the Default registry.
func Gaug(name string) *Gauge { return Default.Gauge(name) }

// Hist returns (creating if needed) a histogram in the Default registry.
func Hist(name string) *Histogram { return Default.Histogram(name) }
