package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeStriped(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a_total")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a_total") != c {
		t.Fatal("get-or-create returned a different counter for the same name")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Load(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	s := r.StripedCounter("s_total", 8)
	for i := 0; i < 100; i++ {
		s.Inc(i)
	}
	if got := s.Sum(); got != 100 {
		t.Fatalf("striped sum = %d, want 100", got)
	}
}

func TestNilHandlesNoop(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var s *Striped
	var ring *Ring
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(10)
	s.Inc(0)
	ring.Begin(0)
	ring.End(0)
	ring.Instant(0, 1)
	if c.Load() != 0 || g.Load() != 0 || s.Sum() != 0 || h.Snap().Count != 0 {
		t.Fatal("nil handles must read as zero")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns")
	// 90 small observations, 10 large: p50 small, p99 large.
	for i := 0; i < 90; i++ {
		h.Observe(100) // bucket [64,128)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1 << 20)
	}
	s := h.Snap()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.SumNanos != 90*100+10*(1<<20) {
		t.Fatalf("sum = %d", s.SumNanos)
	}
	if s.MaxNanos != 1<<20 {
		t.Fatalf("max = %d", s.MaxNanos)
	}
	if s.P50 != 127 { // upper bound of [64,128)
		t.Fatalf("p50 = %d, want 127", s.P50)
	}
	if s.P99 != (1<<21)-1 {
		t.Fatalf("p99 = %d, want %d", s.P99, (1<<21)-1)
	}
	h.Observe(0) // zero clamps into bucket 0
	if h.Snap().Count != 101 {
		t.Fatal("zero observation not counted")
	}
}

func TestEnableGate(t *testing.T) {
	defer SetEnabled(false)
	SetEnabled(false)
	if On() {
		t.Fatal("On() true after SetEnabled(false)")
	}
	r := NewRegistry()
	ring := r.Tracer().Ring(0, 0)
	name := r.Tracer().Name("x")
	ring.Instant(name, 1)
	if got := len(r.Tracer().Events()); got != 0 {
		t.Fatalf("ring recorded %d events while disabled", got)
	}
	SetEnabled(true)
	ring.Instant(name, 1)
	if got := len(r.Tracer().Events()); got != 1 {
		t.Fatalf("ring recorded %d events while enabled, want 1", got)
	}
}

// TestRegistryConcurrent hammers get-or-create plus metric writes from many
// goroutines while snapshots run: the -race suite for the registry.
func TestRegistryConcurrent(t *testing.T) {
	defer SetEnabled(false)
	SetEnabled(true)
	r := NewRegistry()
	const goroutines = 8
	const iters = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("c_total").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h_ns").Observe(int64(i))
				r.StripedCounter("s_total", 4).Inc(g)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			snap := r.Snapshot()
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
			_ = snap
		}
	}()
	wg.Wait()
	<-done
	snap := r.Snapshot()
	if snap.Counters["c_total"] != goroutines*iters {
		t.Fatalf("c_total = %d, want %d", snap.Counters["c_total"], goroutines*iters)
	}
	if snap.Counters["s_total"] != goroutines*iters {
		t.Fatalf("s_total = %d, want %d", snap.Counters["s_total"], goroutines*iters)
	}
	if snap.Histograms["h_ns"].Count != goroutines*iters {
		t.Fatalf("h_ns count = %d", snap.Histograms["h_ns"].Count)
	}
}

func TestGaugeFuncAndReset(t *testing.T) {
	r := NewRegistry()
	var backing int64 = 42
	r.GaugeFunc("view", func() int64 { return backing })
	if got := r.Snapshot().Gauges["view"]; got != 42 {
		t.Fatalf("gauge func = %d, want 42", got)
	}
	r.Counter("c_total").Add(9)
	r.Histogram("h_ns").Observe(5)
	r.Reset()
	snap := r.Snapshot()
	if snap.Counters["c_total"] != 0 || snap.Histograms["h_ns"].Count != 0 {
		t.Fatalf("Reset left values behind: %+v", snap)
	}
	if snap.Gauges["view"] != 42 {
		t.Fatal("Reset must not unregister gauge funcs")
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter(`rpc_total{op="GET",peer="n1"}`).Add(3)
	r.Gauge("depth").Set(-2)
	r.Histogram(`lat_ns{op="PUT"}`).Observe(1000)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE rpc_total counter",
		`rpc_total{op="GET",peer="n1"} 3`,
		"# TYPE depth gauge",
		"depth -2",
		"# TYPE lat_ns summary",
		`lat_ns{op="PUT",quantile="0.5"}`,
		`lat_ns_sum{op="PUT"} 1000`,
		`lat_ns_count{op="PUT"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Inc()
	r.Histogram("h_ns").Observe(123)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if snap.Counters["c_total"] != 1 || snap.Histograms["h_ns"].Count != 1 {
		t.Fatalf("round-tripped snapshot wrong: %+v", snap)
	}
}
