package obs

import (
	"sort"
	"sync"

	"rcuarray/internal/xsync"
)

// Registry holds named metrics. Get-or-create accessors are mutex-guarded
// and meant for construction time; the returned handles are lock-free and
// are what instrumented hot paths hold on to.
//
// A Registry must not be copied after first use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	striped  map[string]*Striped
	funcs    map[string]func() int64
	tracer   *Tracer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		striped:  make(map[string]*Striped),
		funcs:    make(map[string]func() int64),
	}
}

// Counter is a monotonically increasing cache-line-padded atomic counter.
// The zero value is ready to use; a nil *Counter is a no-op.
type Counter struct{ v xsync.PaddedUint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Inc()
	}
}

// Add adds delta.
func (c *Counter) Add(delta uint64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Load returns the current value (0 for nil).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous signed value (backlog depth, occupancy). A nil
// *Gauge is a no-op.
type Gauge struct{ v xsync.PaddedInt64 }

// Set stores x.
func (g *Gauge) Set(x int64) {
	if g != nil {
		g.v.Store(x)
	}
}

// Add adds delta (negative deltas decrement).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Load returns the current value (0 for nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Striped is a counter sharded over cache lines for write-hot read paths
// (per-op access counters incremented by every reader task). Callers pass a
// cheap stable key — the task slot — to pick a stripe.
type Striped struct{ c *xsync.StripedCounter }

// Inc increments the stripe selected by key.
func (s *Striped) Inc(key int) {
	if s != nil {
		s.c.Inc(key)
	}
}

// Add adds delta to the stripe selected by key.
func (s *Striped) Add(key int, delta uint64) {
	if s != nil {
		s.c.Add(key, delta)
	}
}

// Sum returns the (quiescently exact) total across stripes.
func (s *Striped) Sum() uint64 {
	if s == nil {
		return 0
	}
	return s.c.Sum()
}

// Counter returns the counter registered under name, creating it if absent.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if absent.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it if
// absent.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// StripedCounter returns the striped counter registered under name, creating
// it with n stripes if absent (an existing counter keeps its stripe count).
func (r *Registry) StripedCounter(name string, n int) *Striped {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.striped[name]
	if !ok {
		s = &Striped{c: xsync.NewStripedCounter(n)}
		r.striped[name] = s
	}
	return s
}

// GaugeFunc registers fn as a read-on-export gauge view. It is how existing
// padded counters (comm fabric traffic, memory stats) fold into the registry
// without moving: the registry reads them only at snapshot/export time.
// Re-registering a name replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Tracer returns the registry's trace-event tracer, creating it on first
// use.
func (r *Registry) Tracer() *Tracer {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tracer == nil {
		r.tracer = newTracer()
	}
	return r.tracer
}

// Reset zeroes every counter, gauge, and histogram and discards all trace
// rings. Handles stay valid (they are zeroed in place, except rings, which
// are re-created on next use). It must not race with enabled writers; the
// A/B benchmark calls it between quiesced runs.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
	for _, s := range r.striped {
		s.c.Reset()
	}
	if r.tracer != nil {
		r.tracer.reset()
	}
}

// sortedKeys returns m's keys in sorted order, so exports are stable.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
