package obs

import (
	"encoding/json"
	"io"
)

// Snapshot is a point-in-time JSON-able view of a registry: counters and
// striped counters as totals, gauges and gauge funcs as instantaneous
// values, histograms as HistSnap summaries. The harness embeds it in BENCH
// JSON; the /debug/vars endpoint serves it directly.
type Snapshot struct {
	Counters   map[string]uint64   `json:"counters"`
	Gauges     map[string]int64    `json:"gauges"`
	Histograms map[string]HistSnap `json:"histograms"`
}

// Snapshot captures the registry's current values. Safe under concurrent
// writers (values are read atomically, one metric at a time).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	striped := make(map[string]*Striped, len(r.striped))
	for k, v := range r.striped {
		striped[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	funcs := make(map[string]func() int64, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]uint64, len(counters)+len(striped)),
		Gauges:     make(map[string]int64, len(gauges)+len(funcs)),
		Histograms: make(map[string]HistSnap, len(hists)),
	}
	for k, c := range counters {
		s.Counters[k] = c.Load()
	}
	for k, sc := range striped {
		s.Counters[k] = sc.Sum()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Load()
	}
	for k, fn := range funcs {
		s.Gauges[k] = fn()
	}
	for k, h := range hists {
		s.Histograms[k] = h.Snap()
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON (the /debug/vars
// payload).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
