package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// RingSize is the number of event slots per trace ring (power of two). At
// ~48 bytes of payload per slot a ring is ~32 KiB; one ring per (locale,
// task) track keeps the flight recorder bounded no matter how long a run is.
const RingSize = 512

const ringMask = RingSize - 1

// Event phases, matching the Chrome trace-event format "ph" field.
const (
	PhaseBegin    = 'B' // duration-slice begin
	PhaseEnd      = 'E' // duration-slice end
	PhaseInstant  = 'i' // instant event
	PhaseComplete = 'X' // self-contained slice: ts = start, Arg = duration ns
)

// slot is one ring entry. Every word is atomic so snapshotting under the
// race detector is clean; seq is the seqlock word: 2w+1 while the writer is
// filling the slot on wrap w, 2w+2 once stable. A reader that sees an odd
// seq, or different seqs before and after reading the payload, discards the
// slot as torn. Because seq increases monotonically with each wrap, a slot
// reused during a snapshot is always detected (no ABA).
type slot struct {
	seq  atomic.Uint64
	ts   atomic.Int64  // ns since tracer start
	name atomic.Uint32 // interned name id
	ph   atomic.Uint32 // PhaseBegin/PhaseEnd/PhaseInstant/PhaseComplete
	arg  atomic.Int64  // optional numeric payload (duration ns for 'X')
	id   atomic.Uint64 // span/flow id (0 = none); links RPC spans cross-node
}

// Ring is a mostly-single-writer, many-reader ring of trace events for one
// (pid, tid) track — by convention pid is the locale and tid the task slot.
// The owning task calls Begin/End/Instant; any goroutine may snapshot
// concurrently via the tracer. A nil *Ring is a no-op, so callers can hold
// an unconditional handle and let the On() gate decide at runtime.
//
// Nested Begin/End pairs still require a single writer (nesting is
// reconstructed from write order). Self-contained events — Instant and
// Complete — tolerate concurrent writers: each write claims a distinct slot
// via the atomic head, so two producers only collide when one laps the
// other by a full RingSize, and the collision garbles one slot (bounded by
// the seqlock), never the ring. The comm layer exploits this to record RPC
// spans from concurrent completion goroutines on one ring per peer.
type Ring struct {
	pid, tid int
	tr       *Tracer
	head     atomic.Uint64 // next logical write index
	slots    [RingSize]slot
}

// write appends one event stamped with the current trace clock.
func (r *Ring) write(ph uint32, name uint32, arg int64) {
	if r == nil || !enabled.Load() {
		return
	}
	r.writeAt(ph, name, arg, int64(time.Since(r.tr.start)), 0)
}

// writeAt appends one event with an explicit timestamp and span id.
func (r *Ring) writeAt(ph uint32, name uint32, arg, ts int64, id uint64) {
	i := r.head.Add(1) - 1
	s := &r.slots[i&ringMask]
	wrap := i / RingSize
	s.seq.Store(2*wrap + 1)
	s.ts.Store(ts)
	s.name.Store(name)
	s.ph.Store(ph)
	s.arg.Store(arg)
	s.id.Store(id)
	s.seq.Store(2*wrap + 2)
}

// Begin records the start of a named duration slice.
func (r *Ring) Begin(name NameID) { r.write(PhaseBegin, uint32(name), 0) }

// End records the end of the innermost open slice with the same name.
func (r *Ring) End(name NameID) { r.write(PhaseEnd, uint32(name), 0) }

// Instant records a point event with a numeric payload.
func (r *Ring) Instant(name NameID, arg int64) { r.write(PhaseInstant, uint32(name), arg) }

// Complete records a self-contained slice ('X'): start is nanoseconds on the
// tracer clock (from Tracer.Now), dur its length, id an optional span id
// that cross-node merging uses to draw flow arrows. Unlike Begin/End pairs,
// Complete events are safe to write from concurrent goroutines on one ring.
func (r *Ring) Complete(name NameID, start, dur int64, id uint64) {
	if r == nil || !enabled.Load() {
		return
	}
	r.writeAt(PhaseComplete, uint32(name), dur, start, id)
}

// TraceEvent is one stable event recovered from a ring snapshot. The JSON
// form is the wire format of the amTraceDump RPC, so the fields are tagged.
type TraceEvent struct {
	Pid     int    `json:"pid"`
	Tid     int    `json:"tid"`
	TsNanos int64  `json:"ts"`
	Name    string `json:"name"`
	Phase   byte   `json:"ph"`
	Arg     int64  `json:"arg,omitempty"`
	ID      uint64 `json:"id,omitempty"` // span/flow id (0 = none)
	index   uint64 // logical write index, for stable sorting
}

// snapshot collects the stable events currently in the ring. Torn or
// in-progress slots are skipped, not retried: the flight recorder favors
// availability over completeness.
func (r *Ring) snapshot(names []string, out []TraceEvent) []TraceEvent {
	for i := range r.slots {
		s := &r.slots[i]
		seq1 := s.seq.Load()
		if seq1 == 0 || seq1&1 == 1 {
			continue // empty or mid-write
		}
		ts := s.ts.Load()
		name := s.name.Load()
		ph := s.ph.Load()
		arg := s.arg.Load()
		id := s.id.Load()
		if s.seq.Load() != seq1 {
			continue // torn: writer lapped us
		}
		n := "?"
		if int(name) < len(names) {
			n = names[name]
		}
		wrap := seq1/2 - 1
		out = append(out, TraceEvent{
			Pid: r.pid, Tid: r.tid, TsNanos: ts,
			Name: n, Phase: byte(ph), Arg: arg, ID: id,
			index: wrap*RingSize + uint64(i),
		})
	}
	return out
}

// NameID is an interned event name. Interning keeps the ring write path
// free of string headers (a uint32 store instead).
type NameID uint32

// Tracer owns the trace clock, the name table, and the set of rings. One
// tracer per registry; tracks are keyed (pid, tid) = (locale, task slot).
type Tracer struct {
	start time.Time

	mu    sync.Mutex
	names []string
	ids   map[string]NameID
	rings map[[2]int]*Ring
	order [][2]int // ring creation order, for stable export
}

func newTracer() *Tracer {
	return &Tracer{
		start: time.Now(),
		ids:   make(map[string]NameID),
		rings: make(map[[2]int]*Ring),
	}
}

// Now returns nanoseconds since the tracer's epoch — the trace clock every
// ring timestamp is relative to. Cluster merging exchanges Now() values over
// RPC to estimate per-node clock offsets.
func (t *Tracer) Now() int64 { return int64(time.Since(t.start)) }

// Name interns s and returns its id. Call at construction time, not on the
// hot path.
func (t *Tracer) Name(s string) NameID {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[s]; ok {
		return id
	}
	id := NameID(len(t.names))
	t.names = append(t.names, s)
	t.ids[s] = id
	return id
}

// Ring returns the ring for track (pid, tid), creating it if absent. The
// caller must be (or hand the ring to) the single writer for that track.
func (t *Tracer) Ring(pid, tid int) *Ring {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := [2]int{pid, tid}
	r, ok := t.rings[k]
	if !ok {
		r = &Ring{pid: pid, tid: tid, tr: t}
		t.rings[k] = r
		t.order = append(t.order, k)
	}
	return r
}

// Events returns the stable events across all rings, ordered by timestamp
// (ties broken by write order). It is safe to call while writers run.
func (t *Tracer) Events() []TraceEvent {
	t.mu.Lock()
	names := t.names
	rings := make([]*Ring, 0, len(t.order))
	for _, k := range t.order {
		rings = append(rings, t.rings[k])
	}
	t.mu.Unlock()
	var out []TraceEvent
	for _, r := range rings {
		out = r.snapshot(names, out)
	}
	sortEvents(out)
	return out
}

// reset discards all rings and names (registry Reset).
func (t *Tracer) reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.names = nil
	t.ids = make(map[string]NameID)
	t.rings = make(map[[2]int]*Ring)
	t.order = nil
	t.start = time.Now()
}

// sortEvents orders by timestamp, then track, then per-ring write index so
// a B sorts before its same-timestamp E.
func sortEvents(ev []TraceEvent) {
	sort.Slice(ev, func(i, j int) bool {
		a, b := ev[i], ev[j]
		if a.TsNanos != b.TsNanos {
			return a.TsNanos < b.TsNanos
		}
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		return a.index < b.index
	})
}
