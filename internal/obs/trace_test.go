package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func enableForTest(t *testing.T) {
	t.Helper()
	SetEnabled(true)
	t.Cleanup(func() { SetEnabled(false) })
}

func TestRingBasic(t *testing.T) {
	enableForTest(t)
	tr := NewRegistry().Tracer()
	ring := tr.Ring(0, 1)
	nGrow := tr.Name("grow")
	nTick := tr.Name("tick")
	ring.Begin(nGrow)
	ring.Instant(nTick, 7)
	ring.End(nGrow)
	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("got %d events, want 3", len(ev))
	}
	if ev[0].Phase != PhaseBegin || ev[0].Name != "grow" {
		t.Fatalf("first event = %+v", ev[0])
	}
	if ev[1].Phase != PhaseInstant || ev[1].Arg != 7 {
		t.Fatalf("second event = %+v", ev[1])
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].TsNanos < ev[i-1].TsNanos {
			t.Fatal("events not sorted by timestamp")
		}
	}
}

// TestRingWraparound writes far more events than RingSize and checks the
// snapshot holds exactly the last RingSize events, all stable.
func TestRingWraparound(t *testing.T) {
	enableForTest(t)
	tr := NewRegistry().Tracer()
	ring := tr.Ring(0, 0)
	n := tr.Name("e")
	const total = RingSize*3 + 17
	for i := 0; i < total; i++ {
		ring.Instant(n, int64(i))
	}
	ev := tr.Events()
	if len(ev) != RingSize {
		t.Fatalf("got %d events after wrap, want %d", len(ev), RingSize)
	}
	// The surviving args must be the last RingSize writes, in order.
	want := int64(total - RingSize)
	for _, e := range ev {
		if e.Arg != want {
			t.Fatalf("arg = %d, want %d (wraparound kept wrong events)", e.Arg, want)
		}
		want++
	}
}

// TestRingTornReadDetection runs one writer per ring against concurrent
// snapshot readers under -race: every recovered event must be internally
// consistent (arg always equals the ts-derived marker the writer stored),
// proving seqlock rejection of torn slots.
func TestRingTornReadDetection(t *testing.T) {
	enableForTest(t)
	tr := NewRegistry().Tracer()
	const writers = 4
	const writes = 20000
	name := tr.Name("w")
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ring := tr.Ring(w, 0)
			for i := 0; i < writes; i++ {
				// Payload encodes the writer so a torn slot that mixed
				// two writes would be detectable.
				ring.Instant(name, int64(w*writes+i))
			}
		}(w)
	}
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, e := range tr.Events() {
				if e.Name != "w" {
					t.Errorf("unstable event name %q leaked through seqlock", e.Name)
					return
				}
				w := int(e.Arg) / writes
				if w != e.Pid {
					t.Errorf("torn read: ring pid %d holds arg %d (writer %d)", e.Pid, e.Arg, w)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()
}

func TestWriteTraceMatchedPairs(t *testing.T) {
	enableForTest(t)
	r := NewRegistry()
	tr := r.Tracer()
	ring := tr.Ring(0, 0)
	a, b := tr.Name("outer"), tr.Name("inner")
	// Orphan E first (as if its B was overwritten by wraparound).
	ring.End(b)
	ring.Begin(a)
	ring.Begin(b)
	ring.End(b)
	ring.End(a)
	ring.Begin(a) // dangling B with no E
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4 (orphan E and dangling B dropped): %s", len(out.TraceEvents), buf.String())
	}
	// B/E must balance per name with sorted ts.
	depth := 0
	lastTs := -1.0
	for _, e := range out.TraceEvents {
		if e.Ts < lastTs {
			t.Fatal("trace not sorted by ts")
		}
		lastTs = e.Ts
		switch e.Ph {
		case "B":
			depth++
		case "E":
			depth--
		}
		if depth < 0 {
			t.Fatal("E before matching B survived filtering")
		}
	}
	if depth != 0 {
		t.Fatalf("unbalanced trace: depth %d at end", depth)
	}
}

func TestWriteTraceEmpty(t *testing.T) {
	tr := NewRegistry().Tracer()
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	if _, ok := out["traceEvents"]; !ok {
		t.Fatal("empty trace missing traceEvents key")
	}
}
