package obs

import "sync"

// Window tracks an SLO burn rate over a rolling window of an existing
// histogram: the fraction of recent observations over the SLO threshold,
// divided by the error budget. A burn rate of 1.0 means the service is
// spending its budget exactly as fast as it accrues; above 1.0 it is
// burning through it (Google SRE workbook convention). Gating a serving
// benchmark on burn rather than a point p99 makes the gate robust to a
// single early outlier: the window forgets.
//
// The window is sample-based, not timer-based: the owner calls Tick
// periodically (the serving harness ticks every few hundred ms); each Tick
// snapshots the histogram's cumulative (count, over-SLO count) pair and the
// window covers the last slots ticks. Reads between Ticks see the last
// completed window. All methods are safe for concurrent use; Tick callers
// should be a single goroutine.
type Window struct {
	h     *Histogram
	sloNs int64
	// budget is the allowed fraction of observations over sloNs, e.g. 0.01
	// for a 99% objective.
	budget float64

	mu      sync.Mutex
	samples []windowSample // ring of cumulative snapshots
	next    int
	filled  bool
}

type windowSample struct{ count, over uint64 }

// NewWindow wraps h with a rolling window of slots ticks against the given
// SLO threshold (nanoseconds) and error budget (fraction in (0,1]).
// Thresholds resolve at the histogram's log2 bucket granularity — see
// Histogram.CountOver; powers of two are exact.
func NewWindow(h *Histogram, sloNs int64, budget float64, slots int) *Window {
	if slots < 2 {
		slots = 2
	}
	if budget <= 0 {
		budget = 0.01
	}
	w := &Window{h: h, sloNs: sloNs, budget: budget, samples: make([]windowSample, slots)}
	w.samples[0] = windowSample{h.Count(), h.CountOver(sloNs)}
	w.next = 1
	return w
}

// Tick records the current cumulative totals, advancing the window.
func (w *Window) Tick() {
	s := windowSample{w.h.Count(), w.h.CountOver(w.sloNs)}
	w.mu.Lock()
	w.samples[w.next] = s
	w.next++
	if w.next == len(w.samples) {
		w.next = 0
		w.filled = true
	}
	w.mu.Unlock()
}

// delta returns the (count, over) deltas between the oldest and newest
// samples currently in the window.
func (w *Window) delta() (count, over uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	newest := w.samples[(w.next+len(w.samples)-1)%len(w.samples)]
	oldest := w.samples[0]
	if w.filled {
		oldest = w.samples[w.next]
	}
	return newest.count - oldest.count, newest.over - oldest.over
}

// BurnRate returns the window's burn rate: (fraction over SLO) / budget.
// A window with no observations burns nothing.
func (w *Window) BurnRate() float64 {
	count, over := w.delta()
	if count == 0 {
		return 0
	}
	return (float64(over) / float64(count)) / w.budget
}

// Register exports the burn rate (in millionths, so the integer gauge keeps
// three decimal places of rate) and the window's over-SLO fraction as
// read-on-export gauges. Scrape names follow the base name: name_ppm.
func (w *Window) Register(r *Registry, name string) {
	r.GaugeFunc(name+"_ppm", func() int64 {
		return int64(w.BurnRate() * 1e6)
	})
}
