package obs

import "testing"

// windowHist builds a histogram and a window over it with a 1024ns SLO
// (a power of two, so CountOver resolves it exactly) and a 1% budget.
func windowHist(slots int) (*Histogram, *Window) {
	h := NewRegistry().Histogram("w_test")
	return h, NewWindow(h, 1024, 0.01, slots)
}

func TestWindowBurnRate(t *testing.T) {
	h, w := windowHist(4)
	// 99 fast + 1 slow = exactly the 1% budget: burn rate 1.0.
	for i := 0; i < 99; i++ {
		h.Observe(10)
	}
	h.Observe(5000)
	w.Tick()
	if got := w.BurnRate(); got != 1.0 {
		t.Fatalf("burn at exactly budget = %v, want 1.0", got)
	}
	// 10 more slow observations: 11/110 over, 10x the budget.
	for i := 0; i < 10; i++ {
		h.Observe(5000)
	}
	w.Tick()
	if got := w.BurnRate(); got != 10.0 {
		t.Fatalf("burn at 10%% over = %v, want 10.0", got)
	}
}

func TestWindowForgetsOldOutlier(t *testing.T) {
	h, w := windowHist(3)
	h.Observe(5000) // one early outlier, nothing else
	w.Tick()
	if got := w.BurnRate(); got != 100.0 {
		t.Fatalf("all-over window burns %v, want 100.0 (1/0.01)", got)
	}
	// Three quiet ticks of fast traffic roll the outlier out of the window.
	for tick := 0; tick < 3; tick++ {
		for i := 0; i < 50; i++ {
			h.Observe(10)
		}
		w.Tick()
	}
	if got := w.BurnRate(); got != 0 {
		t.Fatalf("outlier aged out but burn = %v, want 0", got)
	}
}

func TestWindowEmptyBurnsNothing(t *testing.T) {
	_, w := windowHist(4)
	w.Tick()
	w.Tick()
	if got := w.BurnRate(); got != 0 {
		t.Fatalf("empty window burns %v, want 0", got)
	}
}

func TestWindowRegisterExportsPPM(t *testing.T) {
	h := NewRegistry().Histogram("w_reg")
	w := NewWindow(h, 1024, 0.01, 4)
	reg := NewRegistry()
	w.Register(reg, "serve_read_burn")
	for i := 0; i < 99; i++ {
		h.Observe(10)
	}
	h.Observe(5000)
	w.Tick()
	snap := reg.Snapshot()
	v, ok := snap.Gauges["serve_read_burn_ppm"]
	if !ok {
		t.Fatal("serve_read_burn_ppm not exported")
	}
	if v != 1_000_000 {
		t.Fatalf("serve_read_burn_ppm = %d, want 1000000 for burn 1.0", v)
	}
}
