// Package prcu implements Predicate RCU (Arbel & Morrison, PPoPP 2015), the
// first of the two RCU extensions the paper's related-work section
// describes: "Predicate RCU ... makes use of a user-supplied predicate to
// determine whether a writer should wait for a concurrent reader."
//
// The implementation generalizes the paper's own TLS-free EBR construction:
// instead of one pair of collective EpochReaders counters per domain, the
// domain holds one pair per predicate stripe. A reader enters with the
// predicate value describing what it will access (for RCUArray, for
// example, the block index); a writer synchronizes against a single stripe
// and waits only for readers whose predicate hashed to it. Readers of
// unrelated data never delay the writer — the benchmark in this package
// shows writer-side synchronize latency dropping proportionally to the
// stripe count when readers and writers touch disjoint predicates.
//
// The memory-ordering argument is stripe-local and identical to Algorithm
// 1's: each stripe has its own epoch whose parity selects the counter, the
// record/verify/undo loop makes the increment the linearization point, and
// overflow preserves parity (the paper's Lemmas 2 and 3 apply per stripe).
// SynchronizeAll provides the classic full-domain grace period by walking
// every stripe.
package prcu

import (
	"fmt"

	"rcuarray/internal/ebr"
)

// Domain is a predicate-striped reclamation domain.
type Domain struct {
	stripes []*ebr.Domain
	mask    uint64
}

// New returns a domain with the given number of predicate stripes (rounded
// up to a power of two, minimum 1). More stripes mean fewer false waits and
// more writer-side work in SynchronizeAll.
func New(stripes int) *Domain {
	n := 1
	for n < stripes {
		n <<= 1
	}
	d := &Domain{stripes: make([]*ebr.Domain, n), mask: uint64(n - 1)}
	for i := range d.stripes {
		d.stripes[i] = ebr.New()
	}
	return d
}

// Stripes returns the stripe count.
func (d *Domain) Stripes() int { return len(d.stripes) }

// stripe maps a predicate value to its stripe. The finalizer keeps
// clustered predicates (sequential block indices) from sharing stripes.
func (d *Domain) stripe(pred uint64) *ebr.Domain {
	return d.stripes[mix(pred)&d.mask]
}

// Guard is the evidence of an entered predicate read-side section.
type Guard struct {
	inner ebr.Guard
}

// Enter begins a read-side critical section for data matching pred.
// Accesses inside the section must be confined to data covered by pred —
// that confinement is the contract that lets writers skip waiting for this
// reader.
func (d *Domain) Enter(pred uint64) Guard {
	return Guard{inner: d.stripe(pred).Enter()}
}

// Exit ends the section. Pointer receiver: a value receiver would latch the
// double-exit check on a copy and let an unbalanced Exit pair go unnoticed.
func (g *Guard) Exit() { g.inner.Exit() }

// Synchronize waits only for readers whose predicate collides with pred —
// the whole point of PRCU. On return, data matching pred that was unlinked
// before the call is safe to reclaim.
func (d *Domain) Synchronize(pred uint64) {
	d.stripe(pred).Synchronize()
}

// SynchronizeAll waits for every reader regardless of predicate (the
// classic grace period; needed when a writer's change spans predicates,
// e.g. RCUArray's whole-snapshot replacement).
//
// Callers must hold the same mutual exclusion for the full call that
// Synchronize requires per stripe.
func (d *Domain) SynchronizeAll() {
	for _, s := range d.stripes {
		s.Synchronize()
	}
}

// ActiveReaders reports the in-flight reader count on pred's stripe for the
// given epoch parity (diagnostics; immediately stale).
func (d *Domain) ActiveReaders(pred uint64, parity uint64) uint64 {
	return d.stripe(pred).ActiveReaders(parity)
}

// Validate panics unless the domain is well formed (used by tests).
func (d *Domain) Validate() {
	if len(d.stripes)&(len(d.stripes)-1) != 0 {
		panic(fmt.Sprintf("prcu: stripe count %d not a power of two", len(d.stripes)))
	}
}

// mix is the splitmix64 finalizer.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
