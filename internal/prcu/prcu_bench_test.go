package prcu

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkSynchronizeUnderDisjointLoad measures writer-side synchronize
// latency while a reader continuously occupies a *different* predicate —
// the scenario PRCU optimizes. Classic RCU (1 stripe) must wait for the
// reader's section boundaries; striped domains skip it entirely.
func BenchmarkSynchronizeUnderDisjointLoad(b *testing.B) {
	for _, stripes := range []int{1, 8, 64} {
		stripes := stripes
		b.Run(fmt.Sprintf("stripes=%d", stripes), func(b *testing.B) {
			d := New(stripes)
			// Readers hammer predicate 1; the writer synchronizes
			// predicate 0. With 1 stripe they collide by construction.
			var stop atomic.Bool
			readerDone := make(chan struct{})
			go func() {
				defer close(readerDone)
				for !stop.Load() {
					g := d.Enter(1)
					// Hold the section long enough to overlap writers.
					for i := 0; i < 64; i++ {
						_ = i
					}
					g.Exit()
				}
			}()
			time.Sleep(time.Millisecond)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Synchronize(0)
			}
			b.StopTimer()
			stop.Store(true)
			<-readerDone
		})
	}
}

// BenchmarkEnterExit measures the read-side cost: identical to plain EBR
// plus one hash — predicates must not make readers slower.
func BenchmarkEnterExit(b *testing.B) {
	d := New(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := d.Enter(uint64(i))
		g.Exit()
	}
}
