package prcu

import (
	"sync/atomic"
	"testing"
	"time"
)

// twoPreds returns two predicate values guaranteed to land on different
// stripes of d.
func twoPreds(t *testing.T, d *Domain) (uint64, uint64) {
	t.Helper()
	if d.Stripes() < 2 {
		t.Fatal("need >= 2 stripes")
	}
	a := uint64(0)
	sa := mix(a) & d.mask
	for b := uint64(1); b < 10000; b++ {
		if mix(b)&d.mask != sa {
			return a, b
		}
	}
	t.Fatal("no colliding-free predicate found")
	return 0, 0
}

func TestStripesRoundUp(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, 1}, {1, 1}, {3, 4}, {8, 8}, {9, 16}} {
		d := New(tc.in)
		if d.Stripes() != tc.want {
			t.Fatalf("New(%d).Stripes() = %d, want %d", tc.in, d.Stripes(), tc.want)
		}
		d.Validate()
	}
}

func TestEnterExitSynchronizeSamePredicate(t *testing.T) {
	d := New(4)
	pred := uint64(7)
	g := d.Enter(pred)

	done := make(chan struct{})
	go func() {
		d.Synchronize(pred)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Synchronize returned while a same-predicate reader was active")
	case <-time.After(20 * time.Millisecond):
	}
	g.Exit()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Synchronize never returned")
	}
}

// The defining property: a writer does NOT wait for readers of disjoint
// predicates.
func TestSynchronizeSkipsDisjointReaders(t *testing.T) {
	d := New(8)
	pa, pb := twoPreds(t, d)

	g := d.Enter(pa) // long-running reader of predicate A
	defer g.Exit()

	done := make(chan struct{})
	go func() {
		d.Synchronize(pb) // writer touching predicate B
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("writer waited for a disjoint-predicate reader")
	}
}

func TestSynchronizeAllWaitsForEveryone(t *testing.T) {
	d := New(8)
	pa, pb := twoPreds(t, d)
	ga := d.Enter(pa)
	gb := d.Enter(pb)

	done := make(chan struct{})
	go func() {
		d.SynchronizeAll()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("SynchronizeAll skipped an active reader")
	case <-time.After(20 * time.Millisecond):
	}
	ga.Exit()
	select {
	case <-done:
		t.Fatal("SynchronizeAll returned with one reader still active")
	case <-time.After(20 * time.Millisecond):
	}
	gb.Exit()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("SynchronizeAll never returned")
	}
}

// Safety torture per stripe: writers on predicate A must never reclaim an
// object a predicate-A reader still holds, while predicate-B readers churn.
func TestTortureDisjointPredicates(t *testing.T) {
	if testing.Short() {
		t.Skip("torture skipped in -short mode")
	}
	d := New(8)
	pa, pb := twoPreds(t, d)

	type node struct {
		retired atomic.Bool
		v       int
	}
	var cur atomic.Pointer[node]
	cur.Store(&node{})

	var stop atomic.Bool
	var violations atomic.Int64
	doneReaders := make(chan struct{})
	go func() { // predicate-A readers: protect cur
		defer close(doneReaders)
		for !stop.Load() {
			g := d.Enter(pa)
			n := cur.Load()
			if n.retired.Load() {
				violations.Add(1)
			}
			_ = n.v
			if n.retired.Load() {
				violations.Add(1)
			}
			g.Exit()
		}
	}()
	noise := make(chan struct{})
	go func() { // predicate-B readers: unrelated traffic
		defer close(noise)
		for !stop.Load() {
			g := d.Enter(pb)
			g.Exit()
		}
	}()

	writes := 0
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		old := cur.Load()
		cur.Store(&node{v: old.v + 1})
		d.Synchronize(pa)
		old.retired.Store(true)
		writes++
	}
	stop.Store(true)
	<-doneReaders
	<-noise
	if violations.Load() != 0 {
		t.Fatalf("%d use-after-free violations", violations.Load())
	}
	if writes == 0 {
		t.Fatal("no writes")
	}
}

func TestActiveReadersDiagnostics(t *testing.T) {
	d := New(2)
	g := d.Enter(5)
	if d.ActiveReaders(5, 0)+d.ActiveReaders(5, 1) == 0 {
		t.Fatal("active reader invisible")
	}
	g.Exit()
}
