package qsbr

import (
	"fmt"
	"testing"
)

// BenchmarkCheckpointIdle measures the cost of a checkpoint with nothing to
// reclaim — the per-operation overhead a task pays at Figure 4's leftmost
// point. It must stay a handful of loads: one observed-epoch store, a scan
// of the participant registry, and an empty defer-list split.
func BenchmarkCheckpointIdle(b *testing.B) {
	for _, parts := range []int{1, 4, 16, 64} {
		parts := parts
		b.Run(fmt.Sprintf("participants=%d", parts), func(b *testing.B) {
			d := New()
			ps := make([]*Participant, parts)
			for i := range ps {
				ps[i] = d.Register()
			}
			p := ps[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Checkpoint()
			}
		})
	}
}

// BenchmarkDefer measures QSBR_Defer: one epoch fetch-add, one observed
// store, one list push.
func BenchmarkDefer(b *testing.B) {
	d := New()
	p := d.Register()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Defer(func() {})
		if i%1024 == 1023 {
			b.StopTimer()
			p.Checkpoint() // drain so the list doesn't grow unboundedly
			b.StartTimer()
		}
	}
}

// BenchmarkDeferCheckpointCycle measures the full reclamation round trip:
// defer one object, checkpoint, reclaim it.
func BenchmarkDeferCheckpointCycle(b *testing.B) {
	d := New()
	p := d.Register()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Defer(func() {})
		p.Checkpoint()
	}
}

// BenchmarkParkUnpark measures the idle transition the tasking layer drives.
func BenchmarkParkUnpark(b *testing.B) {
	d := New()
	p := d.Register()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Park()
		p.Unpark()
	}
}
