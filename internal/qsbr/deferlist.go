package qsbr

// deferNode is one entry of a participant's LIFO defer list: the reclamation
// closure plus the safe epoch that must be globally observed before it may
// run. The paper models entries as the triple (m, e, t); the insertion time t
// exists only for its proofs and is omitted here, as footnote 6 permits.
type deferNode struct {
	next      *deferNode
	safeEpoch uint64
	free      func()
}

// deferList is a singly linked LIFO owned by exactly one participant; only
// the owner pushes and splits, so no synchronization is needed (the paper's
// "memory reclamation can be performed in a parallel-safe manner" per-thread
// argument).
type deferList struct {
	head *deferNode
	size int
}

// push prepends an entry. Lemma 4: because safe epochs derive from a
// monotonically increasing StateEpoch and pushes are sequential on the owner,
// the list stays sorted descending by safe epoch.
func (l *deferList) push(safeEpoch uint64, free func()) {
	l.head = &deferNode{next: l.head, safeEpoch: safeEpoch, free: free}
	l.size++
}

// popLessEqual splits the list at the first entry with safeEpoch <= min and
// returns that suffix (Algorithm 2 line 9). Thanks to the descending order,
// everything after the split point is also reclaimable.
func (l *deferList) popLessEqual(min uint64) *deferNode {
	var prev *deferNode
	cur := l.head
	n := 0
	for cur != nil && cur.safeEpoch > min {
		prev = cur
		cur = cur.next
		n++
	}
	if cur == nil {
		return nil
	}
	if prev == nil {
		l.head = nil
	} else {
		prev.next = nil
	}
	l.size = n
	return cur
}

// takeAll removes and returns the whole list (used when parking or
// unregistering hands entries to the orphan list).
func (l *deferList) takeAll() *deferNode {
	h := l.head
	l.head = nil
	l.size = 0
	return h
}

// sorted reports whether the list is sorted descending by safe epoch.
// Tests assert it as the Lemma 4 invariant.
func (l *deferList) sorted() bool {
	for n := l.head; n != nil && n.next != nil; n = n.next {
		if n.safeEpoch <= n.next.safeEpoch {
			return false
		}
	}
	return true
}

// reclaim runs every free closure on the chain and returns how many ran
// (Algorithm 2 lines 10–13).
func reclaim(head *deferNode) int {
	n := 0
	for head != nil {
		next := head.next
		head.free()
		head.next = nil // help GC, and catch accidental reuse
		head = next
		n++
	}
	return n
}
