package qsbr

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestDeferListPushOrder(t *testing.T) {
	var l deferList
	for e := uint64(1); e <= 5; e++ {
		l.push(e, func() {})
	}
	if l.size != 5 {
		t.Fatalf("size = %d, want 5", l.size)
	}
	if !l.sorted() {
		t.Fatal("list not sorted descending after monotone pushes")
	}
	if l.head.safeEpoch != 5 {
		t.Fatalf("head epoch = %d, want 5 (LIFO)", l.head.safeEpoch)
	}
}

func TestPopLessEqualSplitsSuffix(t *testing.T) {
	var l deferList
	var freed []uint64
	for e := uint64(1); e <= 6; e++ {
		e := e
		l.push(e, func() { freed = append(freed, e) })
	}
	// min=3 keeps {6,5,4}, frees {3,2,1}.
	n := reclaim(l.popLessEqual(3))
	if n != 3 {
		t.Fatalf("reclaimed %d, want 3", n)
	}
	if l.size != 3 {
		t.Fatalf("remaining size = %d, want 3", l.size)
	}
	if got := []uint64{freed[0], freed[1], freed[2]}; got[0] != 3 || got[1] != 2 || got[2] != 1 {
		t.Fatalf("freed order = %v, want [3 2 1]", got)
	}
	if l.head.safeEpoch != 6 || !l.sorted() {
		t.Fatalf("retained prefix corrupted: head=%d sorted=%v", l.head.safeEpoch, l.sorted())
	}
}

func TestPopLessEqualNoMatch(t *testing.T) {
	var l deferList
	l.push(10, func() {})
	if got := l.popLessEqual(9); got != nil {
		t.Fatal("popLessEqual returned entries above the bound")
	}
	if l.size != 1 {
		t.Fatalf("size = %d, want 1", l.size)
	}
}

func TestPopLessEqualAll(t *testing.T) {
	var l deferList
	count := 0
	for e := uint64(1); e <= 4; e++ {
		l.push(e, func() { count++ })
	}
	reclaim(l.popLessEqual(100))
	if count != 4 || l.size != 0 || l.head != nil {
		t.Fatalf("full pop failed: count=%d size=%d", count, l.size)
	}
}

func TestTakeAll(t *testing.T) {
	var l deferList
	l.push(1, func() {})
	l.push(2, func() {})
	h := l.takeAll()
	if h == nil || h.safeEpoch != 2 || h.next.safeEpoch != 1 {
		t.Fatal("takeAll returned wrong chain")
	}
	if l.head != nil || l.size != 0 {
		t.Fatal("takeAll left residue")
	}
}

func TestReclaimEmpty(t *testing.T) {
	if got := reclaim(nil); got != 0 {
		t.Fatalf("reclaim(nil) = %d, want 0", got)
	}
}

// Lemma 4 as a property: pushes with monotonically increasing epochs always
// leave the list sorted descending, and popLessEqual(min) frees exactly the
// entries with epoch <= min.
func TestDeferListLemma4Property(t *testing.T) {
	f := func(deltas []uint8, minSeed uint16) bool {
		var l deferList
		epoch := uint64(0)
		var epochs []uint64
		for _, d := range deltas {
			epoch += uint64(d%4) + 1 // strictly increasing
			epochs = append(epochs, epoch)
			l.push(epoch, func() {})
		}
		if !l.sorted() {
			return false
		}
		min := uint64(minSeed)
		wantFreed := 0
		for _, e := range epochs {
			if e <= min {
				wantFreed++
			}
		}
		got := reclaim(l.popLessEqual(min))
		if got != wantFreed {
			return false
		}
		// Remaining entries must all be > min and still sorted.
		if !l.sorted() {
			return false
		}
		for n := l.head; n != nil; n = n.next {
			if n.safeEpoch <= min {
				return false
			}
		}
		return l.size == len(epochs)-wantFreed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Sanity: strictly descending sequences stay descending under the stdlib's
// definition too (guards against a sign error in sorted()).
func TestSortedAgreesWithStdlib(t *testing.T) {
	var l deferList
	es := []uint64{3, 8, 11, 20}
	for _, e := range es {
		l.push(e, func() {})
	}
	var got []uint64
	for n := l.head; n != nil; n = n.next {
		got = append(got, n.safeEpoch)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] > got[j] }) {
		t.Fatalf("list order %v not descending", got)
	}
	if !l.sorted() {
		t.Fatal("sorted() disagrees with stdlib check")
	}
}
