// Package qsbr implements the paper's Quiescent-State-Based Reclamation
// extension (Section III-B, Algorithm 2): a general-purpose memory reclaimer
// decoupled from RCU and driven by explicit checkpoints.
//
// The paper places this in Chapel's *runtime*, because QSBR needs per-thread
// metadata and Chapel user code has no TLS. This repository mirrors that
// split: package qsbr holds the algorithm, and the tasking layer
// (internal/tasking) plays the role of the runtime — each worker thread owns
// one Participant, accessible to the tasks multiplexed on it, and parks /
// unparks it when idle.
//
// Protocol (Algorithm 2):
//
//   - Defer(free): atomically advance the global StateEpoch from e to e+1,
//     observe e+1, and push (free, e+1) onto the calling participant's LIFO
//     defer list. The old state described by e is now discarded; memory it
//     reached is reclaimable once every participant has observed ≥ e+1.
//   - Checkpoint(): observe the current StateEpoch (a promise of quiescence
//     of all prior states), compute the minimum observed epoch across all
//     participants, and free every defer-list entry whose safe epoch is ≤
//     that minimum. Lemma 4 (the list is sorted descending by safe epoch)
//     makes the split a single-pass prefix walk.
//
// Parked participants are excluded from the minimum (a parked thread is
// quiescent by definition); their pending deferrals are handed to a shared
// orphan list that any checkpointing participant drains — the "assistance
// with bookkeeping" the paper sketches.
//
// The paper's caveats carry over verbatim and are enforced where possible:
// references obtained before a checkpoint must not be dereferenced after it,
// and a participant that never checkpoints stalls reclamation globally
// (demonstrated in tests, measured in the Figure 4 benchmark).
package qsbr
