package qsbr

import (
	"math"
	"sync"
	"sync/atomic"

	"rcuarray/internal/xsync"
)

// Domain is one QSBR reclamation domain: the global StateEpoch, the registry
// of participants (the paper's TLSList), and the shared orphan list that
// absorbs deferrals from parked or departed participants.
//
// A process normally has exactly one Domain per cluster (it models state
// installed in Chapel's runtime), but tests create many.
type Domain struct {
	// stateEpoch is the monotonically increasing epoch describing the
	// state of the entire system (Algorithm 2). Every Defer advances it.
	stateEpoch xsync.PaddedUint64

	// participants is a copy-on-write snapshot of the registry, so that
	// the min-epoch scan in Checkpoint is lock-free (the paper's "can be
	// traversed ... in a lockless manner").
	participants atomic.Pointer[[]*Participant]
	mu           sync.Mutex // serializes registry mutation only

	// orphans holds deferrals whose owning participant parked or
	// unregistered before they became safe. Any checkpoint drains the
	// safe prefix ("assistance with bookkeeping"). orphanCount mirrors
	// len(orphans) so the checkpoint fast path can skip the lock — a
	// checkpoint must stay cheap enough to invoke after every operation
	// (Figure 4's extreme point).
	orphanMu    sync.Mutex
	orphans     []*deferNode
	orphanCount atomic.Int64

	// departed accumulates the statistics of unregistered participants so
	// the domain totals stay exact across thread churn.
	departedMu sync.Mutex
	departed   stats
}

// stats counts a participant's activity. Counters are written only by the
// owning thread via non-RMW store(load+1) — a checkpoint must not pay for a
// locked RMW on a shared cache line, or per-operation checkpointing
// (Figure 4's leftmost point) becomes as expensive as EBR's counters.
type stats struct {
	defers      atomic.Uint64
	reclaimed   atomic.Uint64
	checkpoints atomic.Uint64
}

// bump and addN update an owner-only counter without an RMW: racy-looking
// but single-writer, and atomic so concurrent readers of the totals are
// well defined.
func bump(c *atomic.Uint64)           { c.Store(c.Load() + 1) }
func addN(c *atomic.Uint64, n uint64) { c.Store(c.Load() + n) }

// Participant is the per-thread metadata of Algorithm 2: the observed epoch
// and the thread-owned defer list. In the paper this lives in runtime TLS;
// here the tasking layer owns one Participant per worker. All methods except
// the atomic observations must be called only by the owning thread.
type Participant struct {
	d        *Domain
	observed atomic.Uint64
	parked   atomic.Bool
	list     deferList
	stats    stats
}

// parkedEpoch would be the natural "quiescent at infinity" sentinel; instead
// of storing it we skip parked participants during the scan, which avoids
// reserving an epoch value. Kept as a named constant for documentation.
const parkedEpoch = math.MaxUint64

// New returns an empty domain with StateEpoch zero.
func New() *Domain {
	d := &Domain{}
	empty := make([]*Participant, 0)
	d.participants.Store(&empty)
	return d
}

// Register adds a participant (a thread joining the runtime). Its observed
// epoch starts at the current StateEpoch: a fresh thread holds no protected
// references, so it is quiescent with respect to all prior states.
func (d *Domain) Register() *Participant {
	p := &Participant{d: d}
	p.observed.Store(d.stateEpoch.Load())
	d.mu.Lock()
	old := *d.participants.Load()
	next := make([]*Participant, len(old)+1)
	copy(next, old)
	next[len(old)] = p
	d.participants.Store(&next)
	d.mu.Unlock()
	return p
}

// Unregister removes the participant. Its pending deferrals move to the
// orphan list so other participants' checkpoints eventually reclaim them.
func (d *Domain) Unregister(p *Participant) {
	if p.d != d {
		panic("qsbr: Unregister of foreign participant")
	}
	d.mu.Lock()
	old := *d.participants.Load()
	next := make([]*Participant, 0, len(old))
	for _, q := range old {
		if q != p {
			next = append(next, q)
		}
	}
	if len(next) == len(old) {
		d.mu.Unlock()
		panic("qsbr: Unregister of unknown participant")
	}
	d.participants.Store(&next)
	d.mu.Unlock()
	d.adoptOrphans(p.list.takeAll())
	p.parked.Store(true) // any further use is a bug; Defer will panic
	d.departedMu.Lock()
	d.departed.defers.Add(p.stats.defers.Load())
	d.departed.reclaimed.Add(p.stats.reclaimed.Load())
	d.departed.checkpoints.Add(p.stats.checkpoints.Load())
	d.departedMu.Unlock()
}

// Defer schedules free to run once every participant has observed a state
// newer than the one being discarded (Algorithm 2, QSBR_Defer): it advances
// StateEpoch from e to e+1, records that the caller has observed e+1, and
// pushes (free, e+1) LIFO onto the caller's defer list.
//
// The memory that free reclaims must already be unreachable from the current
// protected state (the caller unlinks first, defers second).
func (p *Participant) Defer(free func()) {
	if p.parked.Load() {
		panic("qsbr: Defer on parked or unregistered participant")
	}
	e := p.d.stateEpoch.Inc() // fetchAdd(1)+1: the new epoch
	p.observed.Store(e)
	p.list.push(e, free)
	bump(&p.stats.defers)
}

// Checkpoint announces quiescence — the caller holds no references into any
// QSBR-protected state obtained before this call — and reclaims every
// deferral that has become safe (Algorithm 2, QSBR_Checkpoint). It returns
// the number of objects reclaimed.
func (p *Participant) Checkpoint() int {
	if p.parked.Load() {
		panic("qsbr: Checkpoint on parked or unregistered participant")
	}
	d := p.d
	bump(&p.stats.checkpoints)
	// Observe the current state (lines 4–5).
	p.observed.Store(d.stateEpoch.Load())
	// Find the minimum (safest) observed epoch (lines 6–8).
	min := d.minObserved()
	// Split our defer list and reclaim the safe suffix (lines 9–13).
	n := reclaim(p.list.popLessEqual(min))
	n += d.reclaimOrphans(min)
	if n > 0 {
		addN(&p.stats.reclaimed, uint64(n))
	}
	return n
}

// Park marks the participant idle (Chapel: a thread without a task). A
// parked participant is quiescent by definition and excluded from the
// min-epoch scan, so it cannot stall reclamation. Its own pending deferrals
// are cleaned up as far as possible and the remainder handed to the orphan
// list (the paper's park-time "cleanup its own DeferList").
//
// The caller must hold no QSBR-protected references.
func (p *Participant) Park() {
	if p.parked.Load() {
		panic("qsbr: Park of already parked participant")
	}
	p.Checkpoint()
	p.d.adoptOrphans(p.list.takeAll())
	p.parked.Store(true)
}

// Unpark returns the participant to active duty: it observes the current
// epoch (it can only acquire references from the current or newer states)
// and rejoins the min-epoch scan.
func (p *Participant) Unpark() {
	p.observed.Store(p.d.stateEpoch.Load())
	if !p.parked.CompareAndSwap(true, false) {
		panic("qsbr: Unpark of non-parked participant")
	}
}

// Parked reports whether the participant is parked.
func (p *Participant) Parked() bool { return p.parked.Load() }

// Observed returns the participant's last observed epoch.
func (p *Participant) Observed() uint64 { return p.observed.Load() }

// Pending returns the number of entries waiting on the defer list.
func (p *Participant) Pending() int { return p.list.size }

// minObserved returns the minimum observed epoch over all active (unparked)
// participants. If every participant is parked the current StateEpoch is the
// bound: nothing can hold a reference.
func (d *Domain) minObserved() uint64 {
	min := d.stateEpoch.Load()
	for _, q := range *d.participants.Load() {
		if q.parked.Load() {
			continue
		}
		if o := q.observed.Load(); o < min {
			min = o
		}
	}
	return min
}

// adoptOrphans appends a chain to the orphan list.
func (d *Domain) adoptOrphans(head *deferNode) {
	if head == nil {
		return
	}
	d.orphanMu.Lock()
	n := 0
	for head != nil {
		next := head.next
		head.next = nil
		d.orphans = append(d.orphans, head)
		head = next
		n++
	}
	d.orphanCount.Add(int64(n))
	d.orphanMu.Unlock()
}

// reclaimOrphans frees orphaned deferrals with safeEpoch <= min and returns
// how many were freed. The free closures run outside the lock.
func (d *Domain) reclaimOrphans(min uint64) int {
	if d.orphanCount.Load() == 0 {
		// Common case: no parked/departed deferrals pending. Skipping
		// the lock keeps per-operation checkpoints cheap.
		return 0
	}
	d.orphanMu.Lock()
	if len(d.orphans) == 0 {
		d.orphanMu.Unlock()
		return 0
	}
	var safe, keep []*deferNode
	for _, n := range d.orphans {
		if n.safeEpoch <= min {
			safe = append(safe, n)
		} else {
			keep = append(keep, n)
		}
	}
	d.orphans = keep
	d.orphanCount.Store(int64(len(keep)))
	d.orphanMu.Unlock()
	for _, n := range safe {
		n.free()
	}
	return len(safe)
}

// Drain repeatedly checkpoints p until every deferral in the domain has
// been reclaimed or attempts checkpoints run out; it reports whether the
// domain drained completely. Other participants must quiesce (checkpoint,
// park, or unregister) for Drain to succeed — it cannot reclaim on their
// behalf, only wait for them; attempts bounds that wait. Teardown paths and
// tests use it instead of hand-rolled checkpoint loops.
func (d *Domain) Drain(p *Participant, attempts int) bool {
	var b xsync.Backoff
	for i := 0; i < attempts; i++ {
		p.Checkpoint()
		if d.Defers() == d.Reclaimed() {
			return true
		}
		b.Wait()
	}
	p.Checkpoint()
	return d.Defers() == d.Reclaimed()
}

// StateEpoch returns the current global state epoch.
func (d *Domain) StateEpoch() uint64 { return d.stateEpoch.Load() }

// Participants returns the number of registered participants.
func (d *Domain) Participants() int { return len(*d.participants.Load()) }

// Reclaimed returns the total number of objects reclaimed. The total is
// exact once participants quiesce; while they run it can lag briefly.
func (d *Domain) Reclaimed() uint64 {
	return d.sum(func(s *stats) *atomic.Uint64 { return &s.reclaimed })
}

// Defers returns the total number of Defer calls.
func (d *Domain) Defers() uint64 {
	return d.sum(func(s *stats) *atomic.Uint64 { return &s.defers })
}

// Checkpoints returns the total number of Checkpoint calls.
func (d *Domain) Checkpoints() uint64 {
	return d.sum(func(s *stats) *atomic.Uint64 { return &s.checkpoints })
}

func (d *Domain) sum(pick func(*stats) *atomic.Uint64) uint64 {
	d.departedMu.Lock()
	total := pick(&d.departed).Load()
	d.departedMu.Unlock()
	for _, p := range *d.participants.Load() {
		total += pick(&p.stats).Load()
	}
	return total
}

// OrphanCount returns the number of orphaned deferrals currently pending.
func (d *Domain) OrphanCount() int {
	d.orphanMu.Lock()
	defer d.orphanMu.Unlock()
	return len(d.orphans)
}

var _ = uint64(parkedEpoch) // documented sentinel, intentionally unused in code
