package qsbr

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDeferAdvancesEpochAndObserves(t *testing.T) {
	d := New()
	p := d.Register()
	p.Defer(func() {})
	if got := d.StateEpoch(); got != 1 {
		t.Fatalf("StateEpoch = %d, want 1", got)
	}
	if got := p.Observed(); got != 1 {
		t.Fatalf("Observed = %d, want 1", got)
	}
	if got := p.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}
}

func TestSoloParticipantReclaimsAtCheckpoint(t *testing.T) {
	d := New()
	p := d.Register()
	freed := 0
	p.Defer(func() { freed++ })
	p.Defer(func() { freed++ })
	if n := p.Checkpoint(); n != 2 {
		t.Fatalf("Checkpoint reclaimed %d, want 2", n)
	}
	if freed != 2 || p.Pending() != 0 {
		t.Fatalf("freed=%d pending=%d", freed, p.Pending())
	}
	if d.Reclaimed() != 2 || d.Defers() != 2 || d.Checkpoints() != 1 {
		t.Fatalf("stats: reclaimed=%d defers=%d checkpoints=%d",
			d.Reclaimed(), d.Defers(), d.Checkpoints())
	}
}

// Lemma 5 in action: an entry is reclaimable only once every active
// participant has observed an epoch >= its safe epoch.
func TestLaggingParticipantStallsReclamation(t *testing.T) {
	d := New()
	p1 := d.Register()
	p2 := d.Register() // never checkpoints: observed stays at 0
	_ = p2

	freed := false
	p1.Defer(func() { freed = true }) // safe epoch 1
	if n := p1.Checkpoint(); n != 0 {
		t.Fatalf("reclaimed %d despite lagging participant", n)
	}
	if freed {
		t.Fatal("entry freed while a participant could still hold it")
	}

	// Once p2 checkpoints, p1's next checkpoint reclaims.
	p2.Checkpoint()
	if n := p1.Checkpoint(); n != 1 {
		t.Fatalf("reclaimed %d after lagging participant quiesced, want 1", n)
	}
	if !freed {
		t.Fatal("entry not freed after global quiescence")
	}
}

// The other participant's checkpoint can also be the one that reclaims —
// but only entries on its *own* list; ours stay ours. Verify ownership.
func TestCheckpointReclaimsOwnListOnly(t *testing.T) {
	d := New()
	p1 := d.Register()
	p2 := d.Register()
	freed := false
	p1.Defer(func() { freed = true })
	p2.Checkpoint()
	if freed {
		t.Fatal("p2's checkpoint freed p1's entry directly")
	}
	if p1.Pending() != 1 {
		t.Fatalf("p1 pending = %d, want 1", p1.Pending())
	}
}

func TestParkExcludesFromMinScan(t *testing.T) {
	d := New()
	p1 := d.Register()
	p2 := d.Register()

	freed := false
	p2.Park() // p2 idle: must not stall p1's reclamation
	p1.Defer(func() { freed = true })
	if n := p1.Checkpoint(); n != 1 || !freed {
		t.Fatalf("parked participant stalled reclamation: n=%d freed=%v", n, freed)
	}

	p2.Unpark()
	if got := p2.Observed(); got != d.StateEpoch() {
		t.Fatalf("Unpark observed %d, want current epoch %d", got, d.StateEpoch())
	}
	// After unpark, p2 stalls reclamation again until it checkpoints.
	freed2 := false
	p1.Defer(func() { freed2 = true })
	p1.Checkpoint()
	if !freed2 {
		// p2 observed the epoch at unpark time, which is older than the
		// new deferral's safe epoch, so stalling is correct.
		p2.Checkpoint()
		p1.Checkpoint()
	}
	if !freed2 {
		t.Fatal("entry never freed after unparked participant quiesced")
	}
}

func TestParkHandsPendingToOrphans(t *testing.T) {
	d := New()
	p1 := d.Register()
	p2 := d.Register()

	freed := false
	p1.Defer(func() { freed = true })
	// p2 hasn't checkpointed, so p1's park-time cleanup cannot free the
	// entry; it must become an orphan.
	p1.Park()
	if freed {
		t.Fatal("park freed an unsafe entry")
	}
	if got := d.OrphanCount(); got != 1 {
		t.Fatalf("OrphanCount = %d, want 1", got)
	}
	// p2's checkpoint drains the orphan once safe.
	if n := p2.Checkpoint(); n != 1 || !freed {
		t.Fatalf("orphan not drained: n=%d freed=%v", n, freed)
	}
	if got := d.OrphanCount(); got != 0 {
		t.Fatalf("OrphanCount after drain = %d, want 0", got)
	}
}

func TestUnregisterMovesPendingToOrphans(t *testing.T) {
	d := New()
	p1 := d.Register()
	p2 := d.Register()
	freed := false
	p1.Defer(func() { freed = true })
	d.Unregister(p1)
	if d.Participants() != 1 {
		t.Fatalf("Participants = %d, want 1", d.Participants())
	}
	if freed {
		t.Fatal("unregister freed an entry that p2 could still hold")
	}
	p2.Checkpoint()
	if !freed {
		t.Fatal("orphan from unregistered participant never freed")
	}
}

func TestUnregisterUnknownPanics(t *testing.T) {
	d := New()
	p := d.Register()
	d.Unregister(p)
	assertPanics(t, "double unregister", func() { d.Unregister(p) })

	other := New()
	q := other.Register()
	assertPanics(t, "foreign participant", func() { d.Unregister(q) })
}

func TestParkedParticipantMisusePanics(t *testing.T) {
	d := New()
	p := d.Register()
	p.Park()
	assertPanics(t, "Defer while parked", func() { p.Defer(func() {}) })
	assertPanics(t, "Checkpoint while parked", func() { p.Checkpoint() })
	assertPanics(t, "double Park", func() { p.Park() })
	p.Unpark()
	assertPanics(t, "double Unpark", func() { p.Unpark() })
}

func TestAllParkedBoundIsCurrentEpoch(t *testing.T) {
	d := New()
	p := d.Register()
	pending := 0
	p.Defer(func() { pending++ })
	p.Park() // cleanup runs; solo participant, so entry frees at park time
	if pending != 1 {
		t.Fatalf("solo park did not clean own list: freed=%d", pending)
	}
}

func TestCheckpointFreesFIFOAcrossEpochBatches(t *testing.T) {
	d := New()
	p := d.Register()
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		p.Defer(func() { order = append(order, i) })
	}
	p.Checkpoint()
	// reclaim walks the LIFO suffix: newest-first within the split.
	if len(order) != 4 || order[0] != 3 || order[3] != 0 {
		t.Fatalf("reclaim order = %v, want [3 2 1 0]", order)
	}
}

// Torture: writers defer retirement of poisoned objects, readers acquire the
// current object between their own checkpoints and verify liveness. Models
// the paper's intended usage discipline: acquire after a checkpoint, drop
// before the next.
func TestTortureDeferVsCheckpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("torture test skipped in -short mode")
	}
	type node struct {
		retired atomic.Bool
		v       uint64
	}
	var current atomic.Pointer[node]
	current.Store(&node{})

	d := New()
	var stop atomic.Bool
	var violations atomic.Int64
	const readers = 4

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := d.Register()
			defer d.Unregister(p)
			for !stop.Load() {
				// Quiescent point, then a bounded access window.
				p.Checkpoint()
				n := current.Load()
				if n.retired.Load() {
					violations.Add(1)
				}
				for i := 0; i < 16; i++ {
					_ = n.v
				}
				if n.retired.Load() {
					violations.Add(1)
				}
			}
		}()
	}

	writer := d.Register()
	deadline := time.Now().Add(300 * time.Millisecond)
	writes := 0
	for time.Now().Before(deadline) {
		old := current.Load()
		current.Store(&node{v: old.v + 1})
		writer.Defer(func() { old.retired.Store(true) })
		writer.Checkpoint()
		writes++
	}
	stop.Store(true)
	wg.Wait()
	d.Unregister(writer)

	// Final full drain: register a fresh participant; with everyone else
	// gone its checkpoint reclaims all orphans.
	p := d.Register()
	p.Checkpoint()

	if v := violations.Load(); v != 0 {
		t.Fatalf("%d use-after-free violations", v)
	}
	if writes == 0 {
		t.Fatal("writer made no progress")
	}
	if live := d.Defers() - d.Reclaimed(); live != 0 {
		t.Fatalf("leak: %d deferrals never reclaimed (defers=%d reclaimed=%d)",
			live, d.Defers(), d.Reclaimed())
	}
	t.Logf("torture: %d writes, %d checkpoints, %d reclaimed", writes, d.Checkpoints(), d.Reclaimed())
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic, got none", name)
		}
	}()
	fn()
}

func TestDrain(t *testing.T) {
	d := New()
	p1 := d.Register()
	p2 := d.Register()
	freed := 0
	for i := 0; i < 5; i++ {
		p1.Defer(func() { freed++ })
	}
	// p2 active and unquiesced: drain must time out.
	if d.Drain(p1, 3) {
		t.Fatal("Drain succeeded despite unquiesced participant")
	}
	p2.Park()
	if !d.Drain(p1, 100) {
		t.Fatal("Drain failed with all other participants parked")
	}
	if freed != 5 {
		t.Fatalf("freed = %d, want 5", freed)
	}
}
