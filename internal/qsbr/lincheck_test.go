package qsbr

import (
	"sync/atomic"
	"testing"

	"rcuarray/internal/check"
)

type lcNode struct {
	retired atomic.Bool
	val     int
}

// TestLincheckCheckpointStarvation drives the paper's QSBR hazard as a
// deterministic schedule: task 0 acquires a protected reference and then
// starves checkpoints while tasks 1–2 storm replacements, deferrals and
// checkpoints. Not one deferral may be reclaimed — the laggard's observed
// epoch pins the minimum — and the held reference must stay live. Once the
// laggard finally checkpoints, the next checkpoint drains everything.
func TestLincheckCheckpointStarvation(t *testing.T) {
	dom := New()
	p := []*Participant{dom.Register(), dom.Register(), dom.Register()}
	d := check.NewDriver("qsbr/ckpt-starvation", 1, 3)
	defer d.Close()

	var current atomic.Pointer[lcNode]
	current.Store(&lcNode{val: 0})

	hold := make(chan struct{})
	acquired := make(chan *lcNode)
	d.Begin(0, check.Op{Kind: check.KindLoad}, func(op *check.Op) {
		n := current.Load() // protected: we have not checkpointed since
		acquired <- n
		<-hold
		if n.retired.Load() {
			op.Out = 1 // reclaimed out from under a non-quiescent reader
		}
		op.Out2 = int64(n.val)
	})
	held := <-acquired

	const storms = 6
	for i := 1; i <= storms; i++ {
		d.Do(1, check.Op{Kind: check.KindStore, Arg: int64(i)}, func(op *check.Op) {
			old := current.Load()
			current.Store(&lcNode{val: int(op.Arg)})
			p[1].Defer(func() { old.retired.Store(true) })
		})
		d.Do(1, check.Op{Kind: check.KindCkpt}, func(*check.Op) { p[1].Checkpoint() })
		d.Do(2, check.Op{Kind: check.KindCkpt}, func(*check.Op) { p[2].Checkpoint() })
	}
	if got := dom.Reclaimed(); got != 0 {
		t.Fatalf("%d deferrals reclaimed while task 0 starved checkpoints", got)
	}
	if pend := p[1].Pending(); pend != storms {
		t.Fatalf("pending = %d, want %d (nothing may drain past the laggard)", pend, storms)
	}

	hold <- struct{}{}
	rd := d.Await(0)
	if rd.Out != 0 || rd.Out2 != 0 {
		t.Fatalf("starved reader observed (retired=%d, val=%d), want live original", rd.Out, rd.Out2)
	}

	d.Do(0, check.Op{Kind: check.KindCkpt}, func(*check.Op) { p[0].Checkpoint() })
	d.Do(1, check.Op{Kind: check.KindCkpt}, func(*check.Op) { p[1].Checkpoint() })
	if got := dom.Reclaimed(); got != storms {
		t.Fatalf("reclaimed %d after laggard quiesced, want %d", got, storms)
	}
	if !held.retired.Load() {
		t.Fatal("original node not retired after full drain")
	}
}

// TestLincheckParkExcludesLaggard is the park-time complement: a parked
// participant is quiescent by definition, so the same replacement storm
// reclaims eagerly round by round even though the parked task never
// checkpoints during it.
func TestLincheckParkExcludesLaggard(t *testing.T) {
	dom := New()
	p := []*Participant{dom.Register(), dom.Register()}
	d := check.NewDriver("qsbr/park", 1, 2)
	defer d.Close()

	var current atomic.Pointer[lcNode]
	current.Store(&lcNode{val: 0})

	d.Do(0, check.Op{Kind: "park"}, func(*check.Op) { p[0].Park() })

	const storms = 5
	for i := 1; i <= storms; i++ {
		got := d.Do(1, check.Op{Kind: check.KindStore, Arg: int64(i)}, func(op *check.Op) {
			old := current.Load()
			current.Store(&lcNode{val: int(op.Arg)})
			p[1].Defer(func() { old.retired.Store(true) })
			op.Out = int64(p[1].Checkpoint())
		})
		if got.Out != 1 {
			t.Fatalf("round %d: checkpoint reclaimed %d, want 1 (parked task must not stall)", i, got.Out)
		}
	}
	if got := dom.Reclaimed(); got != storms {
		t.Fatalf("reclaimed %d during parked storm, want %d", got, storms)
	}

	d.Do(0, check.Op{Kind: "unpark"}, func(*check.Op) { p[0].Unpark() })
	if obs := p[0].Observed(); obs != dom.StateEpoch() {
		t.Fatalf("unparked participant observed %d, want current epoch %d", obs, dom.StateEpoch())
	}
}
