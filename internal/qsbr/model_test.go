package qsbr

// Exhaustive model checking of Algorithm 2 plus the usage discipline the
// paper prescribes (acquire protected references only between checkpoints).
// A DFS with state deduplication enumerates every interleaving of a bounded
// configuration: one updater replacing a protected object mcWrites times
// (unlink → Defer → Checkpoint) and mcParticipants readers looping
// (Checkpoint → acquire → access → access). At each access the checker
// asserts Lemma 5: no object is reclaimed while any thread that could still
// hold it has not observed a newer state.
//
// A meta-test weakens the reclamation rule (free entries with
// safeEpoch <= min+1, off by one) and requires the checker to find the
// resulting use-after-free, demonstrating the check has teeth.

import (
	"fmt"
	"math"
	"testing"
)

const (
	mcParticipants = 2 // readers; the updater is a third participant
	mcOpsPerReader = 2
	mcWrites       = 2
	mcObjects      = mcWrites + 1
)

type qsState struct {
	stateEpoch uint64
	current    uint8
	live       [mcObjects]bool
	nextID     uint8

	// Per-participant observed epochs: readers then updater.
	observed [mcParticipants + 1]uint64

	// The updater's defer list is at most one entry per write in this
	// bounded model (it checkpoints after each defer).
	deferObj   uint8
	deferEpoch uint64
	deferFull  bool

	// updater pc: 0 unlink+publish, 1 defer, 2 checkpoint; writes done
	upc     uint8
	uWrites uint8
	uOld    uint8

	r [mcParticipants]qsReader
}

type qsReader struct {
	pc  uint8 // 0 checkpoint, 1 acquire, 2 access, 3 access again -> op done
	ops uint8
	obj uint8
}

type qsChecker struct {
	visited  map[qsState]bool
	offByOne bool // weakened (buggy) reclamation rule for the meta-test
	err      error
}

func TestModelCheckQSBR(t *testing.T) {
	if err := runQSBRModel(0, false); err != nil {
		t.Fatal(err)
	}
}

// The paper's footnote 5 exempts overflow; we still verify the protocol at
// a large (but non-wrapping within the run) starting epoch.
func TestModelCheckQSBRLargeEpoch(t *testing.T) {
	if err := runQSBRModel(math.MaxUint64/2, false); err != nil {
		t.Fatal(err)
	}
}

func TestModelCheckQSBRDetectsOffByOne(t *testing.T) {
	err := runQSBRModel(0, true)
	if err == nil {
		t.Fatal("model checker missed the off-by-one reclamation bug")
	}
	t.Logf("checker correctly reported: %v", err)
}

func runQSBRModel(epoch0 uint64, offByOne bool) error {
	init := qsState{stateEpoch: epoch0, nextID: 1}
	init.live[0] = true
	for i := range init.observed {
		init.observed[i] = epoch0
	}
	mc := &qsChecker{visited: make(map[qsState]bool), offByOne: offByOne}
	mc.explore(init)
	return mc.err
}

func (mc *qsChecker) explore(s qsState) {
	if mc.err != nil || mc.visited[s] {
		return
	}
	mc.visited[s] = true

	if err := qsInvariants(s); err != nil {
		mc.err = err
		return
	}

	progressed := false
	if next, ok := stepUpdater(s, mc.offByOne); ok {
		progressed = true
		mc.explore(next)
	}
	for i := 0; i < mcParticipants; i++ {
		if next, ok := stepQSReader(s, i, mc.offByOne); ok {
			progressed = true
			mc.explore(next)
		}
	}
	if !progressed && !qsTerminal(s) {
		mc.err = fmt.Errorf("deadlock at non-terminal state %+v", s)
	}
}

func qsInvariants(s qsState) error {
	if !s.live[s.current] {
		return fmt.Errorf("published object %d not live: %+v", s.current, s)
	}
	// Lemma 5 via the usage discipline: a reader between acquire and its
	// next checkpoint (pc 2 or 3) must find its object live.
	for i := range s.r {
		r := s.r[i]
		if (r.pc == 2 || r.pc == 3) && !s.live[r.obj] {
			return fmt.Errorf("use-after-free: reader %d holds freed object %d in %+v", i, r.obj, s)
		}
	}
	return nil
}

func qsTerminal(s qsState) bool {
	if !(s.upc == 0 && s.uWrites == mcWrites && !s.deferFull) {
		return false
	}
	for _, r := range s.r {
		if !(r.pc == 0 && r.ops == mcOpsPerReader) {
			return false
		}
	}
	return true
}

// minObserved computes the reclamation bound over all participants
// (Algorithm 2 lines 6–8). A reader that has completed its ops is parked —
// the runtime transition this repository drives from the tasking layer —
// and parked participants are excluded from the bound, exactly as in the
// implementation. (Without parking, the model correctly deadlocks: a thread
// that stops checkpointing stalls reclamation forever, the hazard the paper
// warns about.)
func minObserved(s qsState) uint64 {
	min := s.stateEpoch
	if s.observed[mcParticipants] < min { // the updater
		min = s.observed[mcParticipants]
	}
	for i := 0; i < mcParticipants; i++ {
		if readerParked(s.r[i]) {
			continue
		}
		if o := s.observed[i]; o < min {
			min = o
		}
	}
	return min
}

func readerParked(r qsReader) bool {
	return r.pc == 0 && r.ops == mcOpsPerReader
}

// tryReclaim frees the pending deferral if its safe epoch permits
// (Algorithm 2 lines 9–13). offByOne weakens the bound for the meta-test.
func tryReclaim(s qsState, offByOne bool) qsState {
	if !s.deferFull {
		return s
	}
	bound := minObserved(s)
	if offByOne {
		bound++
	}
	if s.deferEpoch <= bound {
		s.live[s.deferObj] = false
		s.deferFull = false
	}
	return s
}

// stepUpdater: unlink+publish, then QSBR_Defer, then a checkpoint.
func stepUpdater(s qsState, offByOne bool) (qsState, bool) {
	const self = mcParticipants // updater's observed index
	if s.uWrites == mcWrites && s.upc == 0 {
		// All writes issued; drain the outstanding deferral with final
		// checkpoints (the teardown path of the implementation).
		if !s.deferFull {
			return s, false
		}
		n := s
		n.observed[self] = s.stateEpoch
		n = tryReclaim(n, offByOne)
		if n == s {
			return s, false // nothing changed; avoid a self-loop
		}
		return n, true
	}
	n := s
	switch s.upc {
	case 0: // create and publish the replacement
		if s.deferFull {
			// Bounded model: one outstanding deferral. Attempt a
			// reclaiming checkpoint instead of a new write.
			n.observed[self] = s.stateEpoch
			n = tryReclaim(n, offByOne)
			if n == s {
				return s, false
			}
			return n, true
		}
		n.uOld = s.current
		n.current = s.nextID
		n.live[s.nextID] = true
		n.nextID++
		n.upc = 1
	case 1: // QSBR_Defer: epoch++, observe it, push (obj, epoch)
		n.stateEpoch = s.stateEpoch + 1
		n.observed[self] = n.stateEpoch
		n.deferObj = s.uOld
		n.deferEpoch = n.stateEpoch
		n.deferFull = true
		n.upc = 2
	case 2: // QSBR_Checkpoint: observe, then reclaim if safe
		n.observed[self] = s.stateEpoch
		n = tryReclaim(n, offByOne)
		n.uWrites++
		n.upc = 0
	}
	return n, true
}

// stepQSReader: checkpoint (quiescent point), acquire the current object,
// then access it twice (the hazard window the discipline protects).
func stepQSReader(s qsState, i int, offByOne bool) (qsState, bool) {
	r := s.r[i]
	if r.pc == 0 && r.ops == mcOpsPerReader {
		return s, false
	}
	n := s
	nr := &n.r[i]
	switch r.pc {
	case 0: // checkpoint: observe the current state; reclamation by the
		// updater may now consider us quiescent. (Readers own no defer
		// list in this model, but their observation still gates the
		// updater's reclamation — that is Lemma 5's quantifier.)
		n.observed[i] = s.stateEpoch
		nr.pc = 1
	case 1: // acquire the protected pointer
		nr.obj = s.current
		nr.pc = 2
	case 2: // first access (invariant-checked)
		nr.pc = 3
	case 3: // second access; op complete, back to the quiescent loop
		nr.pc = 0
		nr.ops++
	}
	return n, true
}
