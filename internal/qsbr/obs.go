package qsbr

import "rcuarray/internal/obs"

// Observe folds the domain's totals into r as read-on-export views. QSBR's
// counters are owner-local non-RMW stores precisely so per-operation
// checkpoints stay cheap (Figure 4's leftmost point); moving them into
// registry counters would reintroduce shared RMWs on the checkpoint path.
// Instead the registry reads the existing exact totals only when a snapshot
// or /metrics scrape asks:
//
//	qsbr_defers_total        cumulative Defer calls
//	qsbr_reclaimed_total     cumulative reclaimed deferrals
//	qsbr_checkpoints_total   cumulative Checkpoint calls
//	qsbr_defer_backlog       deferrals not yet reclaimed (the reclamation
//	                         lag Brown's survey flags as THE failure mode)
//	qsbr_orphans             deferrals parked/departed participants left
func (d *Domain) Observe(r *obs.Registry) {
	r.GaugeFunc("qsbr_defers_total", func() int64 { return int64(d.Defers()) })
	r.GaugeFunc("qsbr_reclaimed_total", func() int64 { return int64(d.Reclaimed()) })
	r.GaugeFunc("qsbr_checkpoints_total", func() int64 { return int64(d.Checkpoints()) })
	r.GaugeFunc("qsbr_defer_backlog", func() int64 {
		return int64(d.Defers()) - int64(d.Reclaimed())
	})
	r.GaugeFunc("qsbr_orphans", func() int64 { return int64(d.OrphanCount()) })
}
