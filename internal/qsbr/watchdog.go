package qsbr

import (
	"sync/atomic"
	"time"

	"rcuarray/internal/obs"
)

// Reclamation stall watchdog for QSBR. The failure mode differs from EBR's:
// nothing blocks, the defer backlog just grows, because some active
// participant stopped announcing quiescence while holding an old observed
// epoch. The watchdog samples the minimum observed epoch over active
// participants; when a nonzero backlog sits behind a minimum that has not
// moved for a whole threshold, it names the laggard.
//
// False-positive discipline. Parked participants are skipped — a parked
// thread is quiescent by definition and cannot hold reclamation back, so a
// parked reader never draws a warning (the min-epoch scan already excludes
// it). A participant that checkpoints, however slowly the rest of the system
// moves, advances its observed epoch and resets the stagnation clock. An
// idle-but-drained domain (backlog zero) never warns. Each stagnant minimum
// warns once; the episode re-arms when the minimum moves.

// StallReport names one reclamation stall.
type StallReport struct {
	Domain        string // WatchdogConfig.Name
	Participant   int    // index in the registry snapshot, -1 if resolved
	ObservedEpoch uint64 // the laggard's stuck epoch
	StateEpoch    uint64 // global epoch at sampling time
	Backlog       int64  // deferrals waiting behind the laggard
	StagnantNanos int64  // how long the minimum has not moved
}

// WatchdogConfig tunes a QSBR watchdog. Zero values select the defaults in
// parentheses.
type WatchdogConfig struct {
	// Name labels this domain in reports and trace events ("qsbr").
	Name string
	// Threshold is how long the minimum observed epoch may stagnate behind a
	// nonzero backlog before it counts as a stall (1s).
	Threshold time.Duration
	// Interval is the sampling period (Threshold/8, floor 10ms).
	Interval time.Duration
	// Obs receives rcu_stall_warnings_total and the rcu.stall trace
	// instants (obs.Default).
	Obs *obs.Registry
	// OnStall, when set, runs on the watchdog goroutine per warning.
	OnStall func(StallReport)
}

// watchdogTracePid mirrors the EBR watchdog's track namespace.
const watchdogTracePid = 1 << 17

// Watchdog samples one domain. Stop it before discarding the domain.
type Watchdog struct {
	d        *Domain
	cfg      WatchdogConfig
	warnings *obs.Counter
	ring     *obs.Ring
	nStall   obs.NameID
	count    atomic.Uint64

	// Sampler-goroutine state: the last stagnant minimum, when it was first
	// seen, and whether it already warned.
	lastMin   uint64
	stagnant  int64 // UnixNano the minimum was first seen at; 0 = not tracking
	firedMin  uint64
	hasEpisod bool

	stop chan struct{}
	done chan struct{}
}

// StartWatchdog arms a reclamation stall watchdog on the domain. Sampling is
// gated on obs.On().
func (d *Domain) StartWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Name == "" {
		cfg.Name = "qsbr"
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = time.Second
	}
	if cfg.Interval <= 0 {
		cfg.Interval = cfg.Threshold / 8
		if cfg.Interval < 10*time.Millisecond {
			cfg.Interval = 10 * time.Millisecond
		}
	}
	r := cfg.Obs
	if r == nil {
		r = obs.Default
	}
	tr := r.Tracer()
	w := &Watchdog{
		d:        d,
		cfg:      cfg,
		warnings: r.Counter("rcu_stall_warnings_total"),
		ring:     tr.Ring(watchdogTracePid, 1),
		nStall:   tr.Name("rcu.stall"),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go w.run()
	return w
}

// Stop halts the sampler and waits for it to exit.
func (w *Watchdog) Stop() {
	close(w.stop)
	<-w.done
}

// Warnings returns how many stall warnings this watchdog has fired.
func (w *Watchdog) Warnings() uint64 { return w.count.Load() }

func (w *Watchdog) run() {
	defer close(w.done)
	t := time.NewTicker(w.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.sample()
		}
	}
}

func (w *Watchdog) sample() {
	if !obs.On() {
		return
	}
	backlog := int64(w.d.Defers()) - int64(w.d.Reclaimed())
	state := w.d.StateEpoch()
	min := w.d.minObserved()
	if backlog <= 0 || min >= state {
		// Nothing pending, or nobody is behind (the backlog drains at the
		// next checkpoint — an idle or all-parked domain is not a stall).
		w.stagnant = 0
		return
	}
	now := time.Now().UnixNano()
	if w.stagnant == 0 || min != w.lastMin {
		// New minimum (or first sight of this one): start its clock.
		w.lastMin = min
		w.stagnant = now
		return
	}
	age := now - w.stagnant
	if age < w.cfg.Threshold.Nanoseconds() {
		return
	}
	if w.hasEpisod && w.firedMin == min {
		return // this stagnant minimum already warned
	}
	w.firedMin = min
	w.hasEpisod = true
	w.fire(min, state, backlog, age)
}

// fire attributes one stall to the first active participant still observing
// the stagnant minimum.
func (w *Watchdog) fire(min, state uint64, backlog, age int64) {
	rep := StallReport{
		Domain:        w.cfg.Name,
		Participant:   -1,
		ObservedEpoch: min,
		StateEpoch:    state,
		Backlog:       backlog,
		StagnantNanos: age,
	}
	for i, p := range *w.d.participants.Load() {
		if p.parked.Load() {
			continue
		}
		if p.observed.Load() == min {
			rep.Participant = i
			break
		}
	}
	w.warnings.Inc()
	w.count.Add(1)
	if obs.On() {
		w.ring.Instant(w.nStall, age)
	}
	if w.cfg.OnStall != nil {
		w.cfg.OnStall(rep)
	}
}
