package qsbr

import (
	"sync"
	"testing"
	"time"

	"rcuarray/internal/obs"
)

func withObs(t *testing.T) {
	t.Helper()
	was := obs.On()
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(was) })
}

// TestQSBRWatchdogTrueStall: an active participant that stops checkpointing
// while deferrals pile up behind its stale epoch draws exactly one warning
// naming it; once it checkpoints, the backlog drains and the watchdog stays
// quiet.
func TestQSBRWatchdogTrueStall(t *testing.T) {
	withObs(t)
	d := New()
	laggard := d.Register() // index 0 in the snapshot
	worker := d.Register()
	defer d.Unregister(worker)

	var mu sync.Mutex
	var reports []StallReport
	w := d.StartWatchdog(WatchdogConfig{
		Threshold: 50 * time.Millisecond,
		Interval:  5 * time.Millisecond,
		Obs:       obs.NewRegistry(),
		OnStall: func(r StallReport) {
			mu.Lock()
			reports = append(reports, r)
			mu.Unlock()
		},
	})
	defer w.Stop()

	// The worker defers and keeps checkpointing; the laggard never announces
	// quiescence, so its observed epoch pins the minimum below the state.
	worker.Defer(func() {})
	deadline := time.After(2 * time.Second)
	for w.Warnings() == 0 {
		worker.Checkpoint()
		select {
		case <-deadline:
			t.Fatal("no stall warning within 2s of a stagnant participant")
		case <-time.After(5 * time.Millisecond):
		}
	}
	time.Sleep(100 * time.Millisecond)
	if n := w.Warnings(); n != 1 {
		t.Fatalf("one stagnant epoch drew %d warnings, want exactly 1", n)
	}
	mu.Lock()
	rep := reports[0]
	mu.Unlock()
	if rep.Participant != 0 {
		t.Fatalf("warning named participant %d, want the laggard at 0", rep.Participant)
	}
	if rep.Backlog <= 0 {
		t.Fatalf("warning reports backlog %d, want > 0", rep.Backlog)
	}
	if rep.ObservedEpoch >= rep.StateEpoch {
		t.Fatalf("warning reports observed %d >= state %d", rep.ObservedEpoch, rep.StateEpoch)
	}

	// The laggard checkpoints: reclamation proceeds, and no further warnings.
	laggard.Checkpoint()
	worker.Checkpoint()
	time.Sleep(100 * time.Millisecond)
	if n := w.Warnings(); n != 1 {
		t.Fatalf("recovered domain drew more warnings (total %d)", n)
	}
	d.Unregister(laggard)
}

// TestQSBRWatchdogParkedReaderNoFalsePositive: a parked participant is
// quiescent by definition — deferrals behind it must reclaim at the next
// checkpoint and the watchdog must never warn, no matter how long it stays
// parked.
func TestQSBRWatchdogParkedReaderNoFalsePositive(t *testing.T) {
	withObs(t)
	d := New()
	parked := d.Register()
	worker := d.Register()
	defer d.Unregister(worker)

	w := d.StartWatchdog(WatchdogConfig{
		Threshold: 50 * time.Millisecond,
		Interval:  5 * time.Millisecond,
		Obs:       obs.NewRegistry(),
	})
	defer w.Stop()

	parked.Park()
	worker.Defer(func() {})
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		worker.Checkpoint()
		time.Sleep(5 * time.Millisecond)
	}
	if n := w.Warnings(); n != 0 {
		t.Fatalf("parked participant drew %d false-positive warnings", n)
	}
	parked.Unpark()
	d.Unregister(parked)
}

// TestQSBRWatchdogIdleDomainQuiet: no backlog, no warnings — an idle domain
// is not a stall however stale its participants' epochs look.
func TestQSBRWatchdogIdleDomainQuiet(t *testing.T) {
	withObs(t)
	d := New()
	p := d.Register()
	defer d.Unregister(p)
	w := d.StartWatchdog(WatchdogConfig{
		Threshold: 30 * time.Millisecond,
		Interval:  5 * time.Millisecond,
		Obs:       obs.NewRegistry(),
	})
	defer w.Stop()
	time.Sleep(150 * time.Millisecond)
	if n := w.Warnings(); n != 0 {
		t.Fatalf("idle domain drew %d warnings", n)
	}
}
