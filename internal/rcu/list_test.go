package rcu

// This file demonstrates the Section II applications of RCU — a linked list
// and a hash table — on top of the generic Cell, under both reclamation
// flavors. They double as integration tests for the flavor abstraction.

import (
	"sync"
	"sync/atomic"
	"testing"

	"rcuarray/internal/ebr"
	"rcuarray/internal/memory"
	"rcuarray/internal/qsbr"
)

// intSet is an RCU-protected sorted-slice set: reads traverse the snapshot,
// writers copy-on-write. Snapshots embed memory.Object for poison checks.
type intSet struct {
	cell *Cell[intSetSnap]
	f    Flavor
	mu   sync.Mutex // WriteLock
}

type intSetSnap struct {
	memory.Object
	elems []int
}

func newIntSet(f Flavor) *intSet {
	return &intSet{cell: NewCell(&intSetSnap{}), f: f}
}

func (s *intSet) contains(x int) bool {
	return Read(s.cell, s.f, func(sn *intSetSnap) bool {
		sn.CheckLive()
		for _, e := range sn.elems {
			if e == x {
				return true
			}
			if e > x {
				return false
			}
		}
		return false
	})
}

func (s *intSet) insert(x int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	Write(s.cell, s.f, func(old *intSetSnap) *intSetSnap {
		out := &intSetSnap{elems: make([]int, 0, len(old.elems)+1)}
		inserted := false
		for _, e := range old.elems {
			if !inserted && x < e {
				out.elems = append(out.elems, x)
				inserted = true
			}
			if e == x {
				inserted = true
			}
			out.elems = append(out.elems, e)
		}
		if !inserted {
			out.elems = append(out.elems, x)
		}
		return out
	})
}

func (s *intSet) len() int {
	return Read(s.cell, s.f, func(sn *intSetSnap) int { return len(sn.elems) })
}

func TestIntSetSequential(t *testing.T) {
	for name, mk := range flavors(t) {
		t.Run(name, func(t *testing.T) {
			f, cleanup := mk()
			defer cleanup()
			s := newIntSet(f)
			for _, x := range []int{5, 1, 3, 1, 9} {
				s.insert(x)
			}
			if got := s.len(); got != 4 {
				t.Fatalf("len = %d, want 4", got)
			}
			for _, x := range []int{1, 3, 5, 9} {
				if !s.contains(x) {
					t.Errorf("missing %d", x)
				}
			}
			if s.contains(2) || s.contains(100) {
				t.Error("phantom element")
			}
		})
	}
}

func TestIntSetConcurrentEBR(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	f := EBRFlavor{Domain: ebr.New()}
	s := newIntSet(f)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				s.contains(17)
				s.contains(400)
			}
		}()
	}
	for i := 0; i < 300; i++ {
		s.insert(i)
	}
	stop.Store(true)
	wg.Wait()
	if got := s.len(); got != 300 {
		t.Fatalf("len = %d, want 300", got)
	}
}

// An RCU hash table in the style the paper cites (Triplett et al.): buckets
// are RCU-protected; QSBR readers checkpoint between operations.
func TestHashTableQSBR(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	dom := qsbr.New()

	const buckets = 8
	type table struct {
		cells [buckets]*Cell[intSetSnap]
		mu    sync.Mutex
	}
	tb := &table{}
	for i := range tb.cells {
		tb.cells[i] = NewCell(&intSetSnap{})
	}
	insert := func(f Flavor, x int) {
		tb.mu.Lock()
		defer tb.mu.Unlock()
		Write(tb.cells[x%buckets], f, func(old *intSetSnap) *intSetSnap {
			return &intSetSnap{elems: append(append([]int{}, old.elems...), x)}
		})
	}
	contains := func(f Flavor, x int) bool {
		return Read(tb.cells[x%buckets], f, func(sn *intSetSnap) bool {
			sn.CheckLive()
			for _, e := range sn.elems {
				if e == x {
					return true
				}
			}
			return false
		})
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := dom.Register()
			defer dom.Unregister(p)
			f := QSBRFlavor{Participant: p}
			for i := 0; !stop.Load(); i++ {
				contains(f, i%512)
				if i%16 == 0 {
					p.Checkpoint()
				}
			}
		}()
	}

	wp := dom.Register()
	wf := QSBRFlavor{Participant: wp}
	for i := 0; i < 256; i++ {
		insert(wf, i)
		if i%8 == 0 {
			wp.Checkpoint()
		}
	}
	stop.Store(true)
	wg.Wait()
	dom.Unregister(wp)

	// Fresh participant drains the orphans; everything must be reclaimed.
	p := dom.Register()
	p.Checkpoint()
	for i := 0; i < 256; i++ {
		if !contains(QSBRFlavor{Participant: p}, i) {
			t.Fatalf("missing key %d", i)
		}
	}
	if leak := dom.Defers() - dom.Reclaimed(); leak != 0 {
		t.Fatalf("leaked %d deferrals", leak)
	}
}
