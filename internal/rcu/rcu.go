// Package rcu provides a small generic Read-Copy-Update cell on top of the
// two reclamation flavors this repository implements (package ebr's TLS-free
// epochs and package qsbr's runtime checkpoints).
//
// The paper frames RCU as "two flavors" of one synchronization strategy
// (Section I); this package captures that framing as a Flavor interface so
// that data structures other than RCUArray — the linked list and hash table
// applications cited in Section II — can be protected by either flavor
// without caring which. RCUArray itself (internal/core) specializes the two
// flavors by hand, mirroring the paper's compile-time `isQSBR` parameter,
// because its fast path cannot afford an interface call; this package is the
// general-purpose face of the same machinery.
package rcu

import (
	"sync/atomic"

	"rcuarray/internal/ebr"
	"rcuarray/internal/qsbr"
)

// Flavor abstracts a reclamation strategy: how readers announce themselves
// and how writers retire superseded data.
type Flavor interface {
	// ReadSection runs fn as a read-side critical section: any protected
	// pointer loaded inside fn remains valid until fn returns.
	ReadSection(fn func())
	// Retire schedules free to run once no read-side critical section
	// that could observe the retired data remains. Under EBR this blocks
	// (synchronize-then-free); under QSBR it defers to a checkpoint.
	Retire(free func())
}

// EBRFlavor adapts an ebr.Domain. Retire blocks in Synchronize, so callers
// must serialize Retire calls exactly as the paper's WriteLock serializes
// RCU_Write.
type EBRFlavor struct {
	Domain *ebr.Domain
}

// ReadSection enters/exits the collective epoch counters around fn. The
// exit is deferred so a panicking fn cannot leak the reader and wedge every
// later Synchronize.
func (f EBRFlavor) ReadSection(fn func()) {
	g := f.Domain.Enter()
	defer g.Exit()
	fn()
}

// Retire waits for all pre-existing readers, then frees.
func (f EBRFlavor) Retire(free func()) {
	f.Domain.Synchronize()
	free()
}

// QSBRFlavor adapts a qsbr.Participant. It is bound to the participant's
// owning thread: ReadSection is free of cost (validity extends to the next
// checkpoint), and Retire defers.
type QSBRFlavor struct {
	Participant *qsbr.Participant
}

// ReadSection under QSBR is a no-op wrapper: quiescence is declared at
// checkpoints, not at section boundaries. This is exactly the "readers may
// proceed without overhead" property the paper attributes to QSBR.
func (f QSBRFlavor) ReadSection(fn func()) { fn() }

// Retire pushes free onto the participant's defer list.
func (f QSBRFlavor) Retire(free func()) { f.Participant.Defer(free) }

// Cell is an RCU-protected pointer to an immutable snapshot of type T.
type Cell[T any] struct {
	p atomic.Pointer[T]
}

// NewCell returns a cell holding v.
func NewCell[T any](v *T) *Cell[T] {
	c := &Cell[T]{}
	c.p.Store(v)
	return c
}

// Load returns the current snapshot pointer. It must only be dereferenced
// inside a read-side critical section of the cell's flavor (or between
// checkpoints under QSBR).
func (c *Cell[T]) Load() *T { return c.p.Load() }

// Read applies fn to the current snapshot inside a read-side critical
// section and returns fn's result (the paper's RCU_Read with a result λ).
func Read[T, R any](c *Cell[T], f Flavor, fn func(*T) R) R {
	var out R
	f.ReadSection(func() {
		out = fn(c.p.Load())
	})
	return out
}

// Write performs the paper's RCU_Write: it derives a new snapshot from the
// current one via update (which must not mutate the old snapshot in place,
// except to recycle its immutable components), publishes it, and retires the
// old snapshot through the flavor.
//
// Writers must be serialized externally (the paper's WriteLock); EBRFlavor
// additionally detects concurrent retires via the domain's writer check.
func Write[T any](c *Cell[T], f Flavor, update func(old *T) *T) {
	old := c.p.Load()
	next := update(old)
	c.p.Store(next)
	f.Retire(func() { reclaimSnapshot(old) })
}

// WriteAndFree is Write with an explicit reclamation action for the old
// snapshot (for example, returning its blocks to a memory pool).
func WriteAndFree[T any](c *Cell[T], f Flavor, update func(old *T) *T, free func(old *T)) {
	old := c.p.Load()
	next := update(old)
	c.p.Store(next)
	f.Retire(func() { free(old) })
}

// retirable lets snapshot types opt in to poisoning on reclamation (see
// internal/memory.Object); Write calls it if implemented so that torture
// tests detect premature reclamation of cell snapshots too.
type retirable interface{ Retire() }

func reclaimSnapshot[T any](old *T) {
	if r, ok := any(old).(retirable); ok {
		r.Retire()
	}
}
