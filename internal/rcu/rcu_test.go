package rcu

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rcuarray/internal/ebr"
	"rcuarray/internal/memory"
	"rcuarray/internal/qsbr"
)

type versioned struct {
	memory.Object
	v int
}

func flavors(t *testing.T) map[string]func() (Flavor, func()) {
	t.Helper()
	return map[string]func() (Flavor, func()){
		"EBR": func() (Flavor, func()) {
			return EBRFlavor{Domain: ebr.New()}, func() {}
		},
		"QSBR": func() (Flavor, func()) {
			d := qsbr.New()
			p := d.Register()
			// QSBR needs checkpoints to make Retire take effect;
			// the cleanup function forces a final drain.
			return QSBRFlavor{Participant: p}, func() { p.Checkpoint() }
		},
	}
}

func TestCellLoadStore(t *testing.T) {
	c := NewCell(&versioned{v: 1})
	if got := c.Load().v; got != 1 {
		t.Fatalf("Load().v = %d, want 1", got)
	}
}

func TestReadAppliesLambda(t *testing.T) {
	for name, mk := range flavors(t) {
		t.Run(name, func(t *testing.T) {
			f, cleanup := mk()
			defer cleanup()
			c := NewCell(&versioned{v: 7})
			got := Read(c, f, func(s *versioned) int { return s.v * 2 })
			if got != 14 {
				t.Fatalf("Read = %d, want 14", got)
			}
		})
	}
}

func TestWritePublishesAndRetires(t *testing.T) {
	for name, mk := range flavors(t) {
		t.Run(name, func(t *testing.T) {
			f, cleanup := mk()
			old := &versioned{v: 1}
			c := NewCell(old)
			Write(c, f, func(o *versioned) *versioned {
				return &versioned{v: o.v + 1}
			})
			if got := c.Load().v; got != 2 {
				t.Fatalf("after Write, v = %d, want 2", got)
			}
			cleanup()
			if old.Live() {
				t.Fatal("old snapshot never retired")
			}
		})
	}
}

func TestWriteAndFreeCustomReclaim(t *testing.T) {
	for name, mk := range flavors(t) {
		t.Run(name, func(t *testing.T) {
			f, cleanup := mk()
			c := NewCell(&versioned{v: 1})
			var freed *versioned
			WriteAndFree(c, f,
				func(o *versioned) *versioned { return &versioned{v: o.v + 10} },
				func(o *versioned) { freed = o })
			cleanup()
			if freed == nil || freed.v != 1 {
				t.Fatalf("custom free not invoked correctly: %+v", freed)
			}
		})
	}
}

// Under EBR, Retire must block until concurrent readers exit.
func TestEBRRetireWaitsForReaders(t *testing.T) {
	dom := ebr.New()
	f := EBRFlavor{Domain: dom}
	old := &versioned{v: 1}
	c := NewCell(old)

	inSection := make(chan struct{})
	release := make(chan struct{})
	var sawRetiredInSection atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		f.ReadSection(func() {
			s := c.Load()
			close(inSection)
			<-release
			if !s.Live() {
				sawRetiredInSection.Store(true)
			}
		})
	}()

	<-inSection
	writeDone := make(chan struct{})
	go func() {
		Write(c, f, func(o *versioned) *versioned { return &versioned{v: 2} })
		close(writeDone)
	}()

	select {
	case <-writeDone:
		t.Fatal("EBR Write completed while a reader held the old snapshot")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	wg.Wait()
	<-writeDone

	if sawRetiredInSection.Load() {
		t.Fatal("reader observed a retired snapshot inside its section")
	}
	if old.Live() {
		t.Fatal("old snapshot still live after Write returned")
	}
}

// Under QSBR, Retire is deferred: the old snapshot stays live until the
// participant checkpoints.
func TestQSBRRetireDeferred(t *testing.T) {
	d := qsbr.New()
	p := d.Register()
	f := QSBRFlavor{Participant: p}
	old := &versioned{v: 1}
	c := NewCell(old)

	Write(c, f, func(o *versioned) *versioned { return &versioned{v: 2} })
	if !old.Live() {
		t.Fatal("QSBR retired the old snapshot before any checkpoint")
	}
	p.Checkpoint()
	if old.Live() {
		t.Fatal("old snapshot still live after checkpoint")
	}
}

// Concurrent stress under EBR: many readers, serialized writers, liveness
// checks on every access.
func TestCellStressEBR(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	dom := ebr.New()
	f := EBRFlavor{Domain: dom}
	c := NewCell(&versioned{v: 0})

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				Read(c, f, func(s *versioned) int {
					s.CheckLive()
					return s.v
				})
			}
		}()
	}
	var mu sync.Mutex
	var writers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				mu.Lock()
				Write(c, f, func(o *versioned) *versioned {
					return &versioned{v: o.v + 1}
				})
				mu.Unlock()
			}
		}()
	}
	writers.Wait()
	stop.Store(true)
	wg.Wait()
	if got := c.Load().v; got != 400 {
		t.Fatalf("final version = %d, want 400", got)
	}
}
