// Package rlu implements Read-Log-Update (Matveev, Shavit, Felber &
// Marlier, SOSP 2015), the second RCU extension the paper's related-work
// section describes: "Read-Log-Update provides an interesting solution by
// borrowing concepts from software transactional memory to allow for
// multiple concurrent writers via means of write logs to provide isolation,
// conflict detection and resolution."
//
// Where the paper's RCUArray serializes all structural writers behind one
// cluster-wide WriteLock, RLU lets writers that touch disjoint objects
// commit concurrently:
//
//   - every protected object carries a header pointing at a writer's log
//     copy while locked;
//   - readers run between ReaderLock/ReaderUnlock with a local clock; a
//     reader dereferencing a locked object "steals" the writer's copy iff
//     the writer's commit clock is visible to it, giving each read-side
//     section an atomic all-or-nothing view of every commit;
//   - a writer locks objects into its log (conflict = another writer holds
//     the object → abort and retry), then commits: advance the global
//     clock, wait for the readers that might still need the old versions
//     (the RCU-style quiescence embedded in RLU), write the log back, and
//     unlock.
//
// Like every reclamation scheme in this repository, handles are explicit
// (no TLS): a task acquires a Handle and threads it through its operations.
// The benchmark compares disjoint-writer throughput against the WriteLock
// discipline RCUArray uses, quantifying what the paper's design gives up by
// staying single-writer (and what it saves in complexity).
package rlu

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"rcuarray/internal/xsync"
)

// inactive marks a handle not currently inside a read-side section.
const inactive = math.MaxUint64

// noCommit marks a handle not currently committing.
const noCommit = math.MaxUint64

// Domain groups objects protected by one global clock.
type Domain[T any] struct {
	clock   xsync.PaddedUint64
	mu      sync.Mutex
	handles atomic.Pointer[[]*Handle[T]]

	commits xsync.PaddedUint64
	aborts  xsync.PaddedUint64
	steals  xsync.PaddedUint64
}

// New returns an empty domain.
func New[T any]() *Domain[T] {
	d := &Domain[T]{}
	empty := make([]*Handle[T], 0)
	d.handles.Store(&empty)
	return d
}

// Object is one RLU-protected value. Create with NewObject; access only
// through a Handle.
type Object[T any] struct {
	// copy points at the locking writer's log entry while locked.
	copy atomic.Pointer[logEntry[T]]
	// master is the committed version. Readers access it directly when
	// the object is unlocked (or locked by an invisible writer); writers
	// mutate it only during write-back, after quiescence.
	master T
}

// NewObject wraps v as a protected object.
func NewObject[T any](v T) *Object[T] {
	return &Object[T]{master: v}
}

type logEntry[T any] struct {
	owner *Handle[T]
	obj   *Object[T]
	data  T
}

// Handle is one task's RLU context — the explicit stand-in for the
// per-thread metadata the original keeps in TLS. A handle must not be used
// concurrently.
type Handle[T any] struct {
	d      *Domain[T]
	lclock atomic.Uint64 // reader clock; inactive when outside a section
	wclock atomic.Uint64 // commit clock; noCommit when not committing
	log    []*logEntry[T]
}

// Handle registers and returns a new handle.
func (d *Domain[T]) Handle() *Handle[T] {
	h := &Handle[T]{d: d}
	h.lclock.Store(inactive)
	h.wclock.Store(noCommit)
	d.mu.Lock()
	old := *d.handles.Load()
	next := make([]*Handle[T], len(old)+1)
	copy(next, old)
	next[len(old)] = h
	d.handles.Store(&next)
	d.mu.Unlock()
	return h
}

// Close unregisters the handle.
func (h *Handle[T]) Close() {
	if len(h.log) != 0 {
		panic("rlu: Close with uncommitted writes")
	}
	d := h.d
	d.mu.Lock()
	old := *d.handles.Load()
	next := make([]*Handle[T], 0, len(old))
	for _, x := range old {
		if x != h {
			next = append(next, x)
		}
	}
	d.handles.Store(&next)
	d.mu.Unlock()
}

// ReaderLock begins a read-side section: the handle observes the current
// clock, which fixes the set of commits visible to it.
func (h *Handle[T]) ReaderLock() {
	if h.lclock.Load() != inactive {
		panic("rlu: nested ReaderLock")
	}
	h.lclock.Store(h.d.clock.Load())
}

// ReaderUnlock ends the section.
func (h *Handle[T]) ReaderUnlock() {
	if h.lclock.Load() == inactive {
		panic("rlu: ReaderUnlock without ReaderLock")
	}
	h.lclock.Store(inactive)
}

// Deref returns the version of obj visible to this section: the master, or
// a writer's log copy when that writer is this handle or has a commit clock
// the section can see (the "steal" path).
func (h *Handle[T]) Deref(obj *Object[T]) *T {
	e := obj.copy.Load()
	if e == nil {
		return &obj.master
	}
	if e.owner == h {
		return &e.data // self: read own pending write
	}
	if e.owner.wclock.Load() <= h.lclock.Load() {
		h.d.steals.Inc()
		return &e.data // committed and visible: steal the new version
	}
	return &obj.master
}

// TryLock acquires obj for writing within the current section and returns
// a mutable copy. It fails (false) if another writer holds the object —
// the caller should Abort and retry, RLU's conflict resolution.
func (h *Handle[T]) TryLock(obj *Object[T]) (*T, bool) {
	if h.lclock.Load() == inactive {
		panic("rlu: TryLock outside a section")
	}
	if e := obj.copy.Load(); e != nil {
		if e.owner == h {
			return &e.data, true // already ours
		}
		return nil, false
	}
	e := &logEntry[T]{owner: h, obj: obj, data: obj.master}
	if !obj.copy.CompareAndSwap(nil, e) {
		return nil, false
	}
	h.log = append(h.log, e)
	return &e.data, true
}

// Abort releases every lock taken in this section, discarding the log, and
// ends the section. The caller typically retries.
func (h *Handle[T]) Abort() {
	for _, e := range h.log {
		e.obj.copy.Store(nil)
	}
	h.log = h.log[:0]
	h.d.aborts.Inc()
	h.ReaderUnlock()
}

// Commit publishes this section's writes atomically with respect to
// readers, then ends the section:
//
//  1. set the handle's commit clock to clock+1 and advance the global
//     clock — from this instant, new sections steal the log copies;
//  2. wait for every section that began before the advance (they read the
//     old masters, which write-back is about to overwrite);
//  3. write the log back into the masters and unlock.
func (h *Handle[T]) Commit() {
	if len(h.log) == 0 {
		h.ReaderUnlock()
		return
	}
	d := h.d
	// Publish the commit clock BEFORE advancing the global clock, and
	// never change it afterwards: every object this writer holds must
	// become visible to a reader atomically (all derefs compare against
	// the same wclock), and a reader whose lclock predates the advance
	// must compare below it. When committers race, several may publish
	// the same wclock — harmless: each writer's copies still steal as a
	// unit, and the quiescence wait below is conservative.
	wc := d.clock.Load() + 1
	h.wclock.Store(wc)
	d.clock.Inc()
	// Our own reader presence must not deadlock the wait.
	h.lclock.Store(inactive)
	var b xsync.Backoff
	for _, other := range *d.handles.Load() {
		if other == h {
			continue
		}
		for {
			lc := other.lclock.Load()
			if lc == inactive || lc >= wc {
				break
			}
			b.Wait()
		}
		b.Reset()
	}

	for _, e := range h.log {
		e.obj.master = e.data
		e.obj.copy.Store(nil)
	}
	h.log = h.log[:0]
	h.wclock.Store(noCommit)
	d.commits.Inc()
}

// Commits returns the number of committed write sections.
func (d *Domain[T]) Commits() uint64 { return d.commits.Load() }

// Aborts returns the number of aborted write sections.
func (d *Domain[T]) Aborts() uint64 { return d.aborts.Load() }

// Steals returns how many dereferences returned a visible writer's copy.
func (d *Domain[T]) Steals() uint64 { return d.steals.Load() }

// Handles returns the registered handle count.
func (d *Domain[T]) Handles() int { return len(*d.handles.Load()) }

// Clock returns the global clock (diagnostics).
func (d *Domain[T]) Clock() uint64 { return d.clock.Load() }

var _ = fmt.Sprintf // reserved for future diagnostics
