package rlu

import (
	"fmt"
	"sync"
	"testing"

	"rcuarray/internal/ebr"
)

// BenchmarkDisjointWriters compares RLU's concurrent writers against the
// paper's WriteLock-serialized RCU write path on the same disjoint-object
// workload. This is the design-choice ablation behind RCUArray's single
// cluster-wide WriteLock: the paper cites RLU as the way to "allow greater
// concurrency for write operations" and chooses not to pay its complexity;
// this bench quantifies the trade.
func BenchmarkDisjointWriters(b *testing.B) {
	for _, writers := range []int{1, 2, 4} {
		writers := writers
		b.Run(fmt.Sprintf("rlu/writers=%d", writers), func(b *testing.B) {
			d := New[int64]()
			objs := make([]*Object[int64], writers)
			for i := range objs {
				objs[i] = NewObject[int64](0)
			}
			per := b.N / writers
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := d.Handle()
					defer h.Close()
					for i := 0; i < per; i++ {
						h.ReaderLock()
						p, ok := h.TryLock(objs[w])
						if ok {
							*p++
							h.Commit()
						} else {
							h.Abort()
						}
					}
				}(w)
			}
			wg.Wait()
		})
		b.Run(fmt.Sprintf("writelock-rcu/writers=%d", writers), func(b *testing.B) {
			// The paper's discipline: every writer serializes on one
			// lock, replaces the protected object, and synchronizes.
			dom := ebr.New()
			var mu sync.Mutex
			type cell struct{ v int64 }
			objs := make([]*cell, writers)
			for i := range objs {
				objs[i] = &cell{}
			}
			per := b.N / writers
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						mu.Lock()
						objs[w] = &cell{v: objs[w].v + 1}
						dom.Synchronize()
						mu.Unlock()
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

// BenchmarkReaderSection measures RLU's read-side cost (clock load/store
// per section plus a header check per deref) for comparison with the other
// schemes' read paths.
func BenchmarkReaderSection(b *testing.B) {
	d := New[int64]()
	h := d.Handle()
	defer h.Close()
	obj := NewObject[int64](7)
	var sink int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ReaderLock()
		sink += *h.Deref(obj)
		h.ReaderUnlock()
	}
	_ = sink
}
