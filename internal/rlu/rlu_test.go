package rlu

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCommitPublishes(t *testing.T) {
	d := New[int]()
	h := d.Handle()
	defer h.Close()
	obj := NewObject(10)

	h.ReaderLock()
	p, ok := h.TryLock(obj)
	if !ok {
		t.Fatal("TryLock on unlocked object failed")
	}
	*p = 20
	// Our own section sees the pending write...
	if got := *h.Deref(obj); got != 20 {
		t.Fatalf("self Deref = %d, want 20", got)
	}
	h.Commit()

	// ...and after commit everyone sees it.
	h.ReaderLock()
	if got := *h.Deref(obj); got != 20 {
		t.Fatalf("post-commit Deref = %d, want 20", got)
	}
	h.ReaderUnlock()
	if d.Commits() != 1 {
		t.Fatalf("Commits = %d", d.Commits())
	}
}

func TestReaderIsolationBeforeCommit(t *testing.T) {
	d := New[int]()
	w := d.Handle()
	r := d.Handle()
	defer w.Close()
	defer r.Close()
	obj := NewObject(1)

	r.ReaderLock()
	w.ReaderLock()
	p, _ := w.TryLock(obj)
	*p = 2
	// The reader's section predates the (future) commit: it must see 1.
	if got := *r.Deref(obj); got != 1 {
		t.Fatalf("pre-commit Deref = %d, want 1", got)
	}
	r.ReaderUnlock()

	done := make(chan struct{})
	go func() {
		w.Commit()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Commit hung with no active readers")
	}
}

func TestCommitWaitsForPriorReaders(t *testing.T) {
	d := New[int]()
	w := d.Handle()
	r := d.Handle()
	defer w.Close()
	defer r.Close()
	obj := NewObject(1)

	r.ReaderLock() // enters before the commit's clock advance

	w.ReaderLock()
	p, _ := w.TryLock(obj)
	*p = 2
	done := make(chan struct{})
	go func() {
		w.Commit()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Commit returned while a prior reader was active")
	case <-time.After(20 * time.Millisecond):
	}
	r.ReaderUnlock()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Commit never returned after reader exit")
	}
}

func TestStealVisibleDuringCommitWindow(t *testing.T) {
	d := New[int]()
	w := d.Handle()
	r := d.Handle()
	blocker := d.Handle()
	defer w.Close()
	defer r.Close()
	defer blocker.Close()
	obj := NewObject(1)

	blocker.ReaderLock() // keeps the commit in its wait loop

	w.ReaderLock()
	p, _ := w.TryLock(obj)
	*p = 2
	done := make(chan struct{})
	go func() {
		w.Commit()
		close(done)
	}()
	// Wait for the clock to advance (commit published).
	for d.Clock() == 0 {
		time.Sleep(time.Millisecond)
	}
	// A section starting now must steal the committed-but-unwritten copy.
	r.ReaderLock()
	if got := *r.Deref(obj); got != 2 {
		t.Fatalf("steal Deref = %d, want 2", got)
	}
	r.ReaderUnlock()
	if d.Steals() == 0 {
		t.Fatal("steal path not taken")
	}
	blocker.ReaderUnlock()
	<-done
}

func TestConflictDetection(t *testing.T) {
	d := New[int]()
	a := d.Handle()
	b := d.Handle()
	defer a.Close()
	defer b.Close()
	obj := NewObject(0)

	a.ReaderLock()
	b.ReaderLock()
	if _, ok := a.TryLock(obj); !ok {
		t.Fatal("first TryLock failed")
	}
	if _, ok := b.TryLock(obj); ok {
		t.Fatal("conflicting TryLock succeeded")
	}
	b.Abort()
	if d.Aborts() != 1 {
		t.Fatalf("Aborts = %d", d.Aborts())
	}
	a.Commit()

	// After the commit the object is lockable again.
	b.ReaderLock()
	if _, ok := b.TryLock(obj); !ok {
		t.Fatal("TryLock after commit failed")
	}
	b.Abort()
}

func TestAbortRestores(t *testing.T) {
	d := New[int]()
	h := d.Handle()
	defer h.Close()
	obj := NewObject(5)
	h.ReaderLock()
	p, _ := h.TryLock(obj)
	*p = 99
	h.Abort()
	h.ReaderLock()
	if got := *h.Deref(obj); got != 5 {
		t.Fatalf("post-abort Deref = %d, want 5", got)
	}
	h.ReaderUnlock()
}

func TestTryLockIdempotentForOwner(t *testing.T) {
	d := New[int]()
	h := d.Handle()
	defer h.Close()
	obj := NewObject(0)
	h.ReaderLock()
	p1, _ := h.TryLock(obj)
	p2, ok := h.TryLock(obj)
	if !ok || p1 != p2 {
		t.Fatal("re-lock by owner did not return the same copy")
	}
	h.Abort()
}

func TestMisusePanics(t *testing.T) {
	d := New[int]()
	h := d.Handle()
	obj := NewObject(0)
	assertPanics(t, "ReaderUnlock without lock", h.ReaderUnlock)
	assertPanics(t, "TryLock outside section", func() { h.TryLock(obj) })
	h.ReaderLock()
	assertPanics(t, "nested ReaderLock", h.ReaderLock)
	p, _ := h.TryLock(obj)
	*p = 1
	assertPanics(t, "Close with pending log", h.Close)
	h.Commit()
	h.Close()
	if d.Handles() != 0 {
		t.Fatalf("Handles = %d after Close", d.Handles())
	}
}

// Multiple writers on DISJOINT objects commit concurrently — the capability
// the paper's single WriteLock design forgoes.
func TestDisjointWritersCommitConcurrently(t *testing.T) {
	d := New[int64]()
	const writers = 4
	const commitsPer = 200
	objs := make([]*Object[int64], writers)
	for i := range objs {
		objs[i] = NewObject[int64](0)
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := d.Handle()
			defer h.Close()
			for i := 0; i < commitsPer; i++ {
				h.ReaderLock()
				p, ok := h.TryLock(objs[w])
				if !ok {
					t.Errorf("writer %d: unexpected conflict on private object", w)
					h.Abort()
					return
				}
				*p++
				h.Commit()
			}
		}(w)
	}
	wg.Wait()
	check := d.Handle()
	defer check.Close()
	check.ReaderLock()
	for i, obj := range objs {
		if got := *check.Deref(obj); got != commitsPer {
			t.Fatalf("obj %d = %d, want %d", i, got, commitsPer)
		}
	}
	check.ReaderUnlock()
	if d.Commits() != writers*commitsPer {
		t.Fatalf("Commits = %d", d.Commits())
	}
}

// Bank invariant: transfers move value between accounts inside one commit;
// every read-side section must observe a constant total — RLU gives readers
// an atomic view of each commit (the log is stolen or skipped as a unit).
func TestTortureBankTransfers(t *testing.T) {
	if testing.Short() {
		t.Skip("torture skipped in -short mode")
	}
	d := New[int64]()
	const accounts = 8
	const initial = 1000
	objs := make([]*Object[int64], accounts)
	for i := range objs {
		objs[i] = NewObject[int64](initial)
	}

	var stop atomic.Bool
	var badSums atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := d.Handle()
			defer h.Close()
			for !stop.Load() {
				h.ReaderLock()
				var sum int64
				for _, obj := range objs {
					sum += *h.Deref(obj)
				}
				h.ReaderUnlock()
				if sum != accounts*initial {
					badSums.Add(1)
				}
			}
		}()
	}

	var transfers atomic.Int64
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := d.Handle()
			defer h.Close()
			deadline := time.Now().Add(250 * time.Millisecond)
			for i := 0; time.Now().Before(deadline); i++ {
				from := (w*3 + i) % accounts
				to := (from + 1 + w) % accounts
				if from == to {
					continue
				}
				h.ReaderLock()
				pf, ok1 := h.TryLock(objs[from])
				if !ok1 {
					h.Abort()
					continue
				}
				pt, ok2 := h.TryLock(objs[to])
				if !ok2 {
					h.Abort()
					continue
				}
				*pf -= 5
				*pt += 5
				h.Commit()
				transfers.Add(1)
			}
		}(w)
	}
	// Writer goroutines set the pace; readers stop afterwards.
	wgWriters := make(chan struct{})
	go func() {
		time.Sleep(260 * time.Millisecond)
		close(wgWriters)
	}()
	<-wgWriters
	stop.Store(true)
	wg.Wait()

	if badSums.Load() != 0 {
		t.Fatalf("%d read sections observed a torn total", badSums.Load())
	}
	if transfers.Load() == 0 {
		t.Fatal("no transfers committed")
	}
	h := d.Handle()
	defer h.Close()
	h.ReaderLock()
	var final int64
	for _, obj := range objs {
		final += *h.Deref(obj)
	}
	h.ReaderUnlock()
	if final != accounts*initial {
		t.Fatalf("final total = %d, want %d", final, accounts*initial)
	}
	t.Logf("transfers=%d commits=%d aborts=%d steals=%d",
		transfers.Load(), d.Commits(), d.Aborts(), d.Steals())
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic, got none", name)
		}
	}()
	fn()
}
