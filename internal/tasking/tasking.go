// Package tasking is the runtime layer the paper's QSBR extension lives in:
// a per-locale pool of worker threads onto which tasks are multiplexed, with
// true worker-local storage, and park/unpark transitions when a worker runs
// out of work.
//
// Chapel's qthreads layer gives the paper three things RCUArray relies on:
//
//  1. a bounded set of long-lived workers per locale ("44 tasks per locale"
//     in the evaluation is really 44 workers saturated with tasks),
//  2. thread-local storage for QSBR's per-thread metadata, and
//  3. park/unpark notifications so idle threads don't stall reclamation.
//
// This package reproduces all three with goroutines pinned to a Pool. The
// TLS caveat from the paper carries over exactly: tasks multiplexed on one
// worker share its TLS, so a task must not yield between acquiring a
// QSBR-protected reference and dropping it.
package tasking

import (
	"fmt"
	"sync"
)

// Worker is one long-lived execution context. TLS is the worker-local slot
// (the QSBR participant, when the pool's hooks install one).
type Worker struct {
	// ID is the worker's index within its pool, in [0, Workers).
	ID int
	// Pool is the owning pool.
	Pool *Pool
	// TLS is the worker-local storage slot, owned by the hooks.
	TLS any
}

// Hooks customize worker lifecycle. Any field may be nil.
type Hooks struct {
	// OnStart runs in the worker goroutine before it accepts tasks
	// (e.g. register a QSBR participant into w.TLS).
	OnStart func(w *Worker)
	// OnPark runs when the worker finds no pending work and is about to
	// block (QSBR: park the participant so it cannot stall reclamation).
	OnPark func(w *Worker)
	// OnUnpark runs when a parked worker wakes up for new work.
	OnUnpark func(w *Worker)
	// AfterTask runs in the worker goroutine after each completed task —
	// a "strategic point in the runtime" for injected QSBR checkpoints
	// (task boundaries are natural quiescent states).
	AfterTask func(w *Worker)
	// OnStop runs when the pool shuts down (e.g. unregister).
	OnStop func(w *Worker)
}

// Task is a unit of work executed on some worker.
type Task func(w *Worker)

// Pool runs tasks on a fixed set of workers.
type Pool struct {
	name    string
	queue   chan Task
	workers []*Worker
	hooks   Hooks
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewPool starts a pool with n workers. The queue is buffered so bursts of
// fan-out (a coforall over tasks) do not block the submitter.
func NewPool(name string, n int, hooks Hooks) *Pool {
	if n <= 0 {
		panic(fmt.Sprintf("tasking: invalid worker count %d", n))
	}
	p := &Pool{
		name:  name,
		queue: make(chan Task, 16*n),
		hooks: hooks,
	}
	p.workers = make([]*Worker, n)
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		w := &Worker{ID: i, Pool: p}
		p.workers[i] = w
		p.wg.Add(1)
		go p.run(w, started)
	}
	// Wait for OnStart on every worker, so that (for example) all QSBR
	// participants exist before the first task runs.
	for i := 0; i < n; i++ {
		<-started
	}
	return p
}

// Name returns the pool's name (used in diagnostics).
func (p *Pool) Name() string { return p.name }

// Workers returns the number of workers.
func (p *Pool) Workers() int { return len(p.workers) }

func (p *Pool) run(w *Worker, started chan<- struct{}) {
	defer p.wg.Done()
	if p.hooks.OnStart != nil {
		p.hooks.OnStart(w)
	}
	started <- struct{}{}
	defer func() {
		if p.hooks.OnStop != nil {
			p.hooks.OnStop(w)
		}
	}()
	exec := func(t Task) {
		t(w)
		if p.hooks.AfterTask != nil {
			p.hooks.AfterTask(w)
		}
	}
	for {
		// Fast path: pending work, no park transition.
		select {
		case t, ok := <-p.queue:
			if !ok {
				return
			}
			exec(t)
			continue
		default:
		}
		// Idle: park, block, unpark (the QSBR-relevant transition).
		if p.hooks.OnPark != nil {
			p.hooks.OnPark(w)
		}
		t, ok := <-p.queue
		if p.hooks.OnUnpark != nil {
			p.hooks.OnUnpark(w)
		}
		if !ok {
			return
		}
		exec(t)
	}
}

// Submit enqueues a task. It blocks if the queue is full and panics if the
// pool is shut down.
func (p *Pool) Submit(t Task) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("tasking: Submit on closed pool " + p.name)
	}
	p.mu.Unlock()
	p.queue <- t
}

// Go enqueues fn and returns a done channel that closes when it finishes.
func (p *Pool) Go(fn Task) <-chan struct{} {
	done := make(chan struct{})
	p.Submit(func(w *Worker) {
		defer close(done)
		fn(w)
	})
	return done
}

// Run enqueues fn and waits for it.
func (p *Pool) Run(fn Task) { <-p.Go(fn) }

// ForAll runs n tasks fn(w, 0..n-1) on the pool and waits for all of them.
// This is the `coforall i in 1..n` fan-out used by the benchmarks to model
// "tasks per locale".
func (p *Pool) ForAll(n int, fn func(w *Worker, i int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		p.Submit(func(w *Worker) {
			defer wg.Done()
			fn(w, i)
		})
	}
	wg.Wait()
}

// Shutdown stops accepting tasks, drains the queue, and joins the workers.
func (p *Pool) Shutdown() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.queue)
	p.wg.Wait()
}
