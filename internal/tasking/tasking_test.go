package tasking

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsTasks(t *testing.T) {
	p := NewPool("test", 2, Hooks{})
	defer p.Shutdown()
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		p.Submit(func(w *Worker) {
			defer wg.Done()
			n.Add(1)
		})
	}
	wg.Wait()
	if got := n.Load(); got != 100 {
		t.Fatalf("ran %d tasks, want 100", got)
	}
}

func TestWorkerIdentity(t *testing.T) {
	p := NewPool("ids", 3, Hooks{})
	defer p.Shutdown()
	seen := make(chan int, 64)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		p.Submit(func(w *Worker) {
			defer wg.Done()
			if w.Pool != p {
				t.Errorf("worker pool mismatch")
			}
			seen <- w.ID
		})
	}
	wg.Wait()
	close(seen)
	for id := range seen {
		if id < 0 || id >= 3 {
			t.Fatalf("worker id %d out of range", id)
		}
	}
	if p.Workers() != 3 || p.Name() != "ids" {
		t.Fatalf("pool metadata wrong: %d %q", p.Workers(), p.Name())
	}
}

func TestOnStartRunsBeforeTasks(t *testing.T) {
	var started atomic.Int64
	p := NewPool("start", 4, Hooks{
		OnStart: func(w *Worker) {
			w.TLS = w.ID * 10
			started.Add(1)
		},
	})
	defer p.Shutdown()
	if got := started.Load(); got != 4 {
		t.Fatalf("OnStart ran %d times before NewPool returned, want 4", got)
	}
	p.Run(func(w *Worker) {
		if w.TLS != w.ID*10 {
			t.Errorf("TLS = %v, want %d", w.TLS, w.ID*10)
		}
	})
}

func TestParkUnparkCycle(t *testing.T) {
	var parks, unparks atomic.Int64
	p := NewPool("park", 1, Hooks{
		OnPark:   func(w *Worker) { parks.Add(1) },
		OnUnpark: func(w *Worker) { unparks.Add(1) },
	})
	defer p.Shutdown()

	// Let the worker go idle, then wake it.
	time.Sleep(20 * time.Millisecond)
	if parks.Load() == 0 {
		t.Fatal("idle worker never parked")
	}
	p.Run(func(w *Worker) {})
	if unparks.Load() == 0 {
		t.Fatal("worker ran a task without unparking")
	}
}

func TestOnStopRunsAtShutdown(t *testing.T) {
	var stops atomic.Int64
	p := NewPool("stop", 3, Hooks{OnStop: func(w *Worker) { stops.Add(1) }})
	p.Shutdown()
	if got := stops.Load(); got != 3 {
		t.Fatalf("OnStop ran %d times, want 3", got)
	}
}

func TestShutdownDrainsQueue(t *testing.T) {
	p := NewPool("drain", 1, Hooks{})
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		p.Submit(func(w *Worker) {
			defer wg.Done()
			n.Add(1)
		})
	}
	p.Shutdown()
	wg.Wait()
	if got := n.Load(); got != 50 {
		t.Fatalf("drained %d tasks, want 50", got)
	}
}

func TestSubmitAfterShutdownPanics(t *testing.T) {
	p := NewPool("closed", 1, Hooks{})
	p.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatal("Submit after Shutdown did not panic")
		}
	}()
	p.Submit(func(w *Worker) {})
}

func TestDoubleShutdownIsIdempotent(t *testing.T) {
	p := NewPool("twice", 1, Hooks{})
	p.Shutdown()
	p.Shutdown() // must not panic or hang
}

func TestForAll(t *testing.T) {
	p := NewPool("forall", 4, Hooks{})
	defer p.Shutdown()
	var sum atomic.Int64
	p.ForAll(100, func(w *Worker, i int) {
		sum.Add(int64(i))
	})
	if got := sum.Load(); got != 99*100/2 {
		t.Fatalf("sum = %d, want %d", got, 99*100/2)
	}
}

func TestForAllMoreTasksThanWorkers(t *testing.T) {
	p := NewPool("over", 2, Hooks{})
	defer p.Shutdown()
	var max atomic.Int64
	var cur atomic.Int64
	p.ForAll(32, func(w *Worker, i int) {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
	})
	if got := max.Load(); got > 2 {
		t.Fatalf("concurrency %d exceeded worker count 2", got)
	}
}

func TestNewPoolValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPool(0) did not panic")
		}
	}()
	NewPool("bad", 0, Hooks{})
}

func TestGoReturnsDoneChannel(t *testing.T) {
	p := NewPool("go", 1, Hooks{})
	defer p.Shutdown()
	var ran atomic.Bool
	done := p.Go(func(w *Worker) { ran.Store(true) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Go task never completed")
	}
	if !ran.Load() {
		t.Fatal("done closed before task ran")
	}
}

func TestAfterTaskHook(t *testing.T) {
	var after atomic.Int64
	p := NewPool("after", 2, Hooks{AfterTask: func(w *Worker) { after.Add(1) }})
	defer p.Shutdown()
	p.ForAll(10, func(w *Worker, i int) {})
	if got := after.Load(); got != 10 {
		t.Fatalf("AfterTask ran %d times, want 10", got)
	}
}
