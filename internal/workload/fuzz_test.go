package workload

import "testing"

// FuzzIndexStreamBounds: every stream stays within its [lo, hi) domain for
// any pattern, seed, and (re)binding sequence.
func FuzzIndexStreamBounds(f *testing.F) {
	f.Add(uint8(0), uint64(1), 10, 100, 50)
	f.Add(uint8(1), uint64(7), 0, 3, 9)
	f.Add(uint8(2), uint64(0), 5, 6, 1)
	f.Fuzz(func(t *testing.T, patternRaw uint8, seed uint64, lo, hi, rebind int) {
		pattern := Pattern(patternRaw % 3)
		if lo < 0 || hi <= lo || hi-lo > 1<<16 {
			t.Skip()
		}
		s := NewIndexStreamRange(pattern, seed, lo, hi)
		for i := 0; i < 200; i++ {
			if idx := s.Next(); idx < lo || idx >= hi {
				t.Fatalf("%v: index %d outside [%d,%d)", pattern, idx, lo, hi)
			}
		}
		if rebind > 0 && rebind <= 1<<16 {
			s.SetN(rebind)
			for i := 0; i < 200; i++ {
				if idx := s.Next(); idx < lo || idx >= lo+rebind {
					t.Fatalf("%v after SetN(%d): index %d outside [%d,%d)",
						pattern, rebind, idx, lo, lo+rebind)
				}
			}
		}
	})
}

// FuzzRNGIntn: Intn stays in range for any positive bound.
func FuzzRNGIntn(f *testing.F) {
	f.Add(uint64(0), 1)
	f.Add(uint64(99), 1000)
	f.Fuzz(func(t *testing.T, seed uint64, n int) {
		if n <= 0 || n > 1<<30 {
			t.Skip()
		}
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			if v := r.Intn(n); v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d", n, v)
			}
		}
	})
}
