package workload

import "testing"

// Golden-value regression tests: the evaluation's reproducibility story
// (EXPERIMENTS.md seeds, rcutorture -seed, the lincheck replay contract)
// all assume these generators emit the exact same sequences forever. Any
// change to the SplitMix64 constants, the Intn reduction, the Sequential
// offset selection, or the Zipfian sampler shows up here as a diff against
// values pinned from the current implementation — bump them only with a
// deliberate compatibility break.

func drawn(s *IndexStream, k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

func eq(t *testing.T, name string, got, want []int) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: sequence diverged at %d: got %v, want %v", name, i, got, want)
		}
	}
}

func TestRNGGoldenValues(t *testing.T) {
	cases := []struct {
		seed uint64
		want [4]uint64
	}{
		{0, [4]uint64{16294208416658607535, 7960286522194355700, 487617019471545679, 17909611376780542444}},
		{42, [4]uint64{13679457532755275413, 2949826092126892291, 5139283748462763858, 6349198060258255764}},
	}
	for _, c := range cases {
		r := NewRNG(c.seed)
		for i, w := range c.want {
			if got := r.Next(); got != w {
				t.Fatalf("seed %d draw %d: got %d, want %d", c.seed, i, got, w)
			}
		}
	}
}

func TestIndexStreamGoldenValues(t *testing.T) {
	eq(t, "random/seed1/n64",
		drawn(NewIndexStream(Random, 1, 64), 12),
		[]int{1, 39, 30, 11, 57, 0, 37, 53, 40, 22, 33, 62})
	eq(t, "sequential/seed2/n10",
		drawn(NewIndexStream(Sequential, 2, 10), 12),
		[]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1})
	eq(t, "zipfian/seed3/n100",
		drawn(NewIndexStream(Zipfian, 3, 100), 12),
		[]int{0, 19, 12, 0, 1, 13, 0, 54, 6, 54, 19, 21})
	eq(t, "range/seed7/[32,64)",
		drawn(NewIndexStreamRange(Random, 7, 32, 64), 12),
		[]int{55, 60, 34, 43, 58, 49, 54, 62, 33, 41, 43, 44})
}

func TestIndexStreamSetNGolden(t *testing.T) {
	s := NewIndexStream(Random, 9, 64)
	eq(t, "setn/before", drawn(s, 6), []int{36, 34, 54, 32, 33, 62})
	s.SetN(16)
	eq(t, "setn/after", drawn(s, 6), []int{12, 13, 9, 3, 0, 9})
}

// TestIndexStreamSameSeedSameSequence pins the per-seed determinism
// property itself (independent of the specific constants above).
func TestIndexStreamSameSeedSameSequence(t *testing.T) {
	for _, p := range []Pattern{Random, Sequential, Zipfian} {
		a := drawn(NewIndexStream(p, 77, 128), 64)
		b := drawn(NewIndexStream(p, 77, 128), 64)
		eq(t, "replay/"+p.String(), a, b)
		for i, idx := range a {
			if idx < 0 || idx >= 128 {
				t.Fatalf("%s: draw %d out of range: %d", p, i, idx)
			}
		}
	}
}
