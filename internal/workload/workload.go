// Package workload provides the deterministic access-pattern generators the
// evaluation drives the arrays with: the paper's random and sequential
// per-task index streams (Figures 2a–2d), plus a Zipfian stream used by the
// extended ablations. Generators are seeded per task so runs are exactly
// reproducible and tasks do not share RNG state.
package workload

import (
	"fmt"
	"math"
)

// Pattern selects an index access pattern.
type Pattern int

const (
	// Random indexes uniformly at random (Figures 2a, 2c).
	Random Pattern = iota
	// Sequential walks the array in order from a per-task offset
	// (Figures 2b, 2d).
	Sequential
	// Zipfian skews accesses toward low indices (extended ablation:
	// contention concentrated on few blocks).
	Zipfian
)

// String names the pattern as used in experiment output.
func (p Pattern) String() string {
	switch p {
	case Random:
		return "random"
	case Sequential:
		return "sequential"
	case Zipfian:
		return "zipfian"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// RNG is a SplitMix64 generator: tiny, fast, and deterministic across
// platforms. It is not safe for concurrent use; give each task its own.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed (zero is allowed).
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Next returns the next 64-bit value.
func (r *RNG) Next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("workload: Intn(%d)", n))
	}
	return int(r.Next() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}

// IndexStream produces a deterministic sequence of indices in
// [base, base+n).
type IndexStream struct {
	pattern Pattern
	rng     *RNG
	base    int
	n       int
	pos     int
	zipf    *zipfGen
}

// NewIndexStream creates a stream over [0, n) for the given pattern. seed
// individualizes the stream; for Sequential it also selects the starting
// offset so concurrent tasks do not all hit block 0 together (the paper's
// tasks likewise walk disjoint ranges).
func NewIndexStream(p Pattern, seed uint64, n int) *IndexStream {
	if n <= 0 {
		panic(fmt.Sprintf("workload: IndexStream over %d elements", n))
	}
	return NewIndexStreamRange(p, seed, 0, n)
}

// NewIndexStreamRange creates a stream over [lo, hi). Disjoint per-task
// ranges give race-detector-clean workloads: no two tasks ever touch the
// same element (the overlapping variant matches the paper's benchmarks but
// relies on the array's plain-memory element semantics).
func NewIndexStreamRange(p Pattern, seed uint64, lo, hi int) *IndexStream {
	n := hi - lo
	if n <= 0 || lo < 0 {
		panic(fmt.Sprintf("workload: IndexStream over [%d,%d)", lo, hi))
	}
	s := &IndexStream{pattern: p, rng: NewRNG(seed), base: lo, n: n}
	switch p {
	case Sequential:
		s.pos = s.rng.Intn(n)
	case Zipfian:
		s.zipf = newZipfGen(s.rng, 0.99, n)
	}
	return s
}

// Next returns the next index.
func (s *IndexStream) Next() int {
	switch s.pattern {
	case Random:
		return s.base + s.rng.Intn(s.n)
	case Sequential:
		idx := s.pos
		s.pos++
		if s.pos >= s.n {
			s.pos = 0
		}
		return s.base + idx
	case Zipfian:
		return s.base + s.zipf.next()
	default:
		panic(fmt.Sprintf("workload: unknown pattern %d", int(s.pattern)))
	}
}

// SetN rebinds the stream to a new array length; used by mixed workloads
// that grow the array mid-run.
func (s *IndexStream) SetN(n int) {
	if n <= 0 {
		panic(fmt.Sprintf("workload: SetN(%d)", n))
	}
	s.n = n
	if s.pos >= n {
		s.pos = 0
	}
	if s.pattern == Zipfian {
		s.zipf = newZipfGen(s.rng, 0.99, n)
	}
}

// zipfGen samples a bounded Zipfian distribution over [0, n) with skew
// theta, using the Gray et al. method popularized by YCSB: one O(n) zeta
// precomputation, then O(1) per sample.
type zipfGen struct {
	rng   *RNG
	n     int
	theta float64
	zetan float64
	alpha float64
	eta   float64
}

func newZipfGen(rng *RNG, theta float64, n int) *zipfGen {
	z := &zipfGen{rng: rng, n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

func zeta(n int, theta float64) float64 {
	var sum float64
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

func (z *zipfGen) next() int {
	u := z.rng.Float64()
	uz := u * z.zetan
	switch {
	case uz < 1:
		return 0
	case uz < 1+math.Pow(0.5, z.theta):
		return 1
	default:
		idx := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
		if idx >= z.n {
			idx = z.n - 1
		}
		return idx
	}
}
