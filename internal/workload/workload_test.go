package workload

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(8)
	same := 0
	a = NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different-seed RNGs coincided %d/100 times", same)
	}
}

func TestIntnInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestPatternString(t *testing.T) {
	//rcuvet:ignore order-independent table test: each entry asserts in isolation, no cross-iteration state
	for p, want := range map[Pattern]string{
		Random: "random", Sequential: "sequential", Zipfian: "zipfian", Pattern(9): "Pattern(9)",
	} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
}

func TestSequentialWrapsAndCovers(t *testing.T) {
	s := NewIndexStream(Sequential, 42, 10)
	seen := make(map[int]int)
	for i := 0; i < 20; i++ { // two full laps
		seen[s.Next()]++
	}
	for i := 0; i < 10; i++ {
		if seen[i] != 2 {
			t.Fatalf("index %d visited %d times, want 2", i, seen[i])
		}
	}
}

func TestSequentialDistinctSeedsDistinctOffsets(t *testing.T) {
	offsets := make(map[int]bool)
	for seed := uint64(0); seed < 16; seed++ {
		s := NewIndexStream(Sequential, seed, 1000)
		offsets[s.Next()] = true
	}
	if len(offsets) < 8 {
		t.Fatalf("only %d distinct starting offsets across 16 seeds", len(offsets))
	}
}

func TestRandomStreamInRange(t *testing.T) {
	s := NewIndexStream(Random, 1, 37)
	for i := 0; i < 5000; i++ {
		idx := s.Next()
		if idx < 0 || idx >= 37 {
			t.Fatalf("index %d out of range", idx)
		}
	}
}

func TestRandomStreamRoughlyUniform(t *testing.T) {
	const n, draws = 8, 64000
	s := NewIndexStream(Random, 99, n)
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[s.Next()]++
	}
	want := draws / n
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Fatalf("bucket %d count %d deviates >20%% from %d", i, c, want)
		}
	}
}

func TestZipfianSkewsLow(t *testing.T) {
	s := NewIndexStream(Zipfian, 5, 1000)
	lowHits := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		idx := s.Next()
		if idx < 0 || idx >= 1000 {
			t.Fatalf("zipf index %d out of range", idx)
		}
		if idx < 10 {
			lowHits++
		}
	}
	// Under uniform sampling, the low decile of 1% would get ~1%; Zipf
	// theta=0.99 concentrates far more. Require a conservative 20%.
	if frac := float64(lowHits) / draws; frac < 0.20 {
		t.Fatalf("zipf low-10 fraction = %.3f, want >= 0.20", frac)
	}
}

func TestSetNRebinds(t *testing.T) {
	for _, p := range []Pattern{Random, Sequential, Zipfian} {
		s := NewIndexStream(p, 2, 10)
		for i := 0; i < 15; i++ {
			s.Next()
		}
		s.SetN(4)
		for i := 0; i < 100; i++ {
			if idx := s.Next(); idx >= 4 {
				t.Fatalf("%v: index %d after SetN(4)", p, idx)
			}
		}
		s.SetN(100)
		sawBig := false
		for i := 0; i < 2000; i++ {
			if s.Next() >= 4 {
				sawBig = true
				break
			}
		}
		if !sawBig {
			t.Fatalf("%v: stream stuck below old bound after SetN(100)", p)
		}
	}
}

func TestStreamValidation(t *testing.T) {
	assertPanics(t, "zero n", func() { NewIndexStream(Random, 0, 0) })
	s := NewIndexStream(Random, 0, 4)
	assertPanics(t, "SetN(0)", func() { s.SetN(0) })
}

func TestStreamsDeterministic(t *testing.T) {
	for _, p := range []Pattern{Random, Sequential, Zipfian} {
		a := NewIndexStream(p, 11, 100)
		b := NewIndexStream(p, 11, 100)
		for i := 0; i < 200; i++ {
			if a.Next() != b.Next() {
				t.Fatalf("%v stream not deterministic", p)
			}
		}
	}
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic, got none", name)
		}
	}()
	fn()
}
