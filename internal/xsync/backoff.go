package xsync

import (
	"runtime"
	"time"
)

// Backoff implements a bounded spin-then-yield waiting strategy. It is used
// wherever the paper's pseudocode says "wait for readers": a writer spinning
// on the EpochReaders counters, a task waiting on the cluster-wide WriteLock,
// and the QSBR registry scan.
//
// The zero value is ready to use. Backoff is not safe for concurrent use; it
// is a per-waiter scratch value.
type Backoff struct {
	spins int
}

// spinLimit is how many times Wait busy-loops before it starts yielding the
// processor. On a single-core host (GOMAXPROCS=1) pure spinning would starve
// the goroutine we are waiting on, so the limit is deliberately small and the
// yield path is the common one.
const spinLimit = 16

// Wait performs one waiting step: a short busy spin at first, escalating to
// runtime.Gosched, and finally to short sleeps so that a long wait does not
// monopolize an oversubscribed scheduler.
func (b *Backoff) Wait() {
	b.spins++
	switch {
	case b.spins <= spinLimit:
		spin(4 << uint(b.spins%6))
	case b.spins <= spinLimit*8:
		runtime.Gosched()
	default:
		time.Sleep(time.Microsecond)
	}
}

// Reset restores the backoff to its initial (spinning) state.
func (b *Backoff) Reset() { b.spins = 0 }

//go:noinline
func spin(n int) {
	for i := 0; i < n; i++ {
		// The loop body is empty on purpose; go:noinline keeps the
		// compiler from deleting the loop entirely.
	}
}

// Expo is a seeded, jittered exponential backoff for network-scale retries
// (milliseconds, not the nanosecond spins of Backoff). Each Next doubles the
// ceiling up to Max and returns a uniformly jittered duration in
// [ceiling/2, ceiling), so concurrent retriers decorrelate; the same seed
// yields the same sequence, which keeps retry schedules replayable alongside
// the fault-injection seeds.
//
// The zero value is usable and defaults to Base=1ms, Max=100ms, seed 1.
// Expo is a per-waiter scratch value, not safe for concurrent use.
type Expo struct {
	Base, Max time.Duration
	Seed      uint64
	attempt   uint
	rng       uint64
}

// Next returns the next backoff duration without sleeping.
func (e *Expo) Next() time.Duration {
	base, max := e.Base, e.Max
	if base <= 0 {
		base = time.Millisecond
	}
	if max <= 0 {
		max = 100 * time.Millisecond
	}
	if e.rng == 0 {
		e.rng = e.Seed
		if e.rng == 0 {
			e.rng = 1
		}
	}
	d := base << e.attempt
	if d > max || d < base { // d < base: shift overflow
		d = max
	} else {
		e.attempt++
	}
	// xorshift64 jitter: uniform in [d/2, d).
	e.rng ^= e.rng << 13
	e.rng ^= e.rng >> 7
	e.rng ^= e.rng << 17
	half := uint64(d / 2)
	if half == 0 {
		return d
	}
	return time.Duration(half + e.rng%half)
}

// Sleep blocks for the next backoff duration.
func (e *Expo) Sleep() { time.Sleep(e.Next()) }

// Reset restores the exponential schedule (the jitter stream continues).
func (e *Expo) Reset() { e.attempt = 0 }

// SpinUntil repeatedly evaluates cond with backoff until it returns true.
func SpinUntil(cond func() bool) {
	var b Backoff
	for !cond() {
		b.Wait()
	}
}

// SpinUntilTimeout repeatedly evaluates cond with backoff until it returns
// true or the deadline expires. It reports whether cond became true.
func SpinUntilTimeout(cond func() bool, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	var b Backoff
	for !cond() {
		if time.Now().After(deadline) {
			return cond()
		}
		b.Wait()
	}
	return true
}
