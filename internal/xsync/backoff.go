package xsync

import (
	"runtime"
	"time"
)

// Backoff implements a bounded spin-then-yield waiting strategy. It is used
// wherever the paper's pseudocode says "wait for readers": a writer spinning
// on the EpochReaders counters, a task waiting on the cluster-wide WriteLock,
// and the QSBR registry scan.
//
// The zero value is ready to use. Backoff is not safe for concurrent use; it
// is a per-waiter scratch value.
type Backoff struct {
	spins int
}

// spinLimit is how many times Wait busy-loops before it starts yielding the
// processor. On a single-core host (GOMAXPROCS=1) pure spinning would starve
// the goroutine we are waiting on, so the limit is deliberately small and the
// yield path is the common one.
const spinLimit = 16

// Wait performs one waiting step: a short busy spin at first, escalating to
// runtime.Gosched, and finally to short sleeps so that a long wait does not
// monopolize an oversubscribed scheduler.
func (b *Backoff) Wait() {
	b.spins++
	switch {
	case b.spins <= spinLimit:
		spin(4 << uint(b.spins%6))
	case b.spins <= spinLimit*8:
		runtime.Gosched()
	default:
		time.Sleep(time.Microsecond)
	}
}

// Reset restores the backoff to its initial (spinning) state.
func (b *Backoff) Reset() { b.spins = 0 }

//go:noinline
func spin(n int) {
	for i := 0; i < n; i++ {
		// The loop body is empty on purpose; go:noinline keeps the
		// compiler from deleting the loop entirely.
	}
}

// SpinUntil repeatedly evaluates cond with backoff until it returns true.
func SpinUntil(cond func() bool) {
	var b Backoff
	for !cond() {
		b.Wait()
	}
}

// SpinUntilTimeout repeatedly evaluates cond with backoff until it returns
// true or the deadline expires. It reports whether cond became true.
func SpinUntilTimeout(cond func() bool, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	var b Backoff
	for !cond() {
		if time.Now().After(deadline) {
			return cond()
		}
		b.Wait()
	}
	return true
}
