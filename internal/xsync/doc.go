// Package xsync provides low-level synchronization building blocks shared by
// every concurrent module in this repository: cache-line padded atomic
// counters, bounded spin/backoff helpers, and striped counters for
// low-contention statistics.
//
// Nothing in this package is specific to RCU; it exists so that the
// algorithmic packages (ebr, qsbr, core) read like the paper's pseudocode
// rather than like a pile of padding arithmetic.
package xsync
