package xsync

import "sync/atomic"

// CacheLineSize is the assumed size, in bytes, of a CPU cache line. 64 bytes
// is correct for every x86-64 and most arm64 parts; over-padding on machines
// with smaller lines costs only memory.
const CacheLineSize = 64

// Pad occupies one cache line. Embed it between fields that must not share a
// line (false sharing).
type Pad [CacheLineSize]byte

// PaddedUint64 is an atomic uint64 that owns its cache line. Use it for
// counters that are written by many goroutines, such as the EpochReaders
// pair in the EBR domain.
type PaddedUint64 struct {
	_ Pad
	v atomic.Uint64
	_ Pad
}

// Load atomically loads the counter.
func (p *PaddedUint64) Load() uint64 { return p.v.Load() }

// Store atomically stores x.
func (p *PaddedUint64) Store(x uint64) { p.v.Store(x) }

// Add atomically adds delta (which may be produced from a negative value via
// two's complement, e.g. ^uint64(0) for -1) and returns the new value.
func (p *PaddedUint64) Add(delta uint64) uint64 { return p.v.Add(delta) }

// Inc atomically increments the counter and returns the new value.
func (p *PaddedUint64) Inc() uint64 { return p.v.Add(1) }

// Dec atomically decrements the counter and returns the new value. It is the
// caller's responsibility that the counter is positive; in race-detector and
// testing builds callers assert non-underflow separately.
func (p *PaddedUint64) Dec() uint64 { return p.v.Add(^uint64(0)) }

// CompareAndSwap performs an atomic compare-and-swap.
func (p *PaddedUint64) CompareAndSwap(old, new uint64) bool {
	return p.v.CompareAndSwap(old, new)
}

// PaddedInt64 is an atomic int64 that owns its cache line.
type PaddedInt64 struct {
	_ Pad
	v atomic.Int64
	_ Pad
}

// Load atomically loads the counter.
func (p *PaddedInt64) Load() int64 { return p.v.Load() }

// Store atomically stores x.
func (p *PaddedInt64) Store(x int64) { p.v.Store(x) }

// Add atomically adds delta and returns the new value.
func (p *PaddedInt64) Add(delta int64) int64 { return p.v.Add(delta) }
