package xsync

// StripedCounter is a statistic counter sharded over several cache lines to
// keep hot-path increments from contending. Reads (Sum) are approximate under
// concurrent increments, which is acceptable for the communication and
// allocator statistics it backs.
type StripedCounter struct {
	stripes []PaddedUint64
}

// NewStripedCounter returns a counter with n stripes (rounded up to a power
// of two, minimum 1).
func NewStripedCounter(n int) *StripedCounter {
	return &StripedCounter{stripes: make([]PaddedUint64, RoundPow2(n, 1<<30))}
}

// RoundPow2 rounds n up to a power of two, clamped to [1, max] (max must
// itself be a power of two). Stripe sizing shares it.
func RoundPow2(n, max int) int {
	size := 1
	for size < n && size < max {
		size <<= 1
	}
	return size
}

// Add adds delta to the stripe selected by key. Callers pass a cheap
// per-goroutine or per-locale key (for example, the locale id).
func (c *StripedCounter) Add(key int, delta uint64) {
	c.stripes[key&(len(c.stripes)-1)].Add(delta)
}

// Inc increments the stripe selected by key.
func (c *StripedCounter) Inc(key int) { c.Add(key, 1) }

// Sum returns the sum across stripes. The value is exact once writers have
// quiesced and a lower bound while they run.
func (c *StripedCounter) Sum() uint64 {
	var total uint64
	for i := range c.stripes {
		total += c.stripes[i].Load()
	}
	return total
}

// Reset zeroes all stripes. It must not race with Add.
func (c *StripedCounter) Reset() {
	for i := range c.stripes {
		c.stripes[i].Store(0)
	}
}
