package xsync

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
	"unsafe"
)

func TestPaddedUint64Basics(t *testing.T) {
	var c PaddedUint64
	if got := c.Load(); got != 0 {
		t.Fatalf("zero value Load = %d, want 0", got)
	}
	c.Store(41)
	if got := c.Inc(); got != 42 {
		t.Fatalf("Inc = %d, want 42", got)
	}
	if got := c.Dec(); got != 41 {
		t.Fatalf("Dec = %d, want 41", got)
	}
	if got := c.Add(^uint64(0)); got != 40 {
		t.Fatalf("Add(-1) = %d, want 40", got)
	}
	if !c.CompareAndSwap(40, 7) {
		t.Fatal("CAS(40,7) failed")
	}
	if c.CompareAndSwap(40, 9) {
		t.Fatal("CAS(40,9) succeeded unexpectedly")
	}
	if got := c.Load(); got != 7 {
		t.Fatalf("final Load = %d, want 7", got)
	}
}

func TestPaddedUint64Size(t *testing.T) {
	// The counter must span at least two full cache lines of padding plus
	// the value, so adjacent counters in an array never share a line.
	if sz := unsafe.Sizeof(PaddedUint64{}); sz < 2*CacheLineSize+8 {
		t.Fatalf("PaddedUint64 size = %d, want >= %d", sz, 2*CacheLineSize+8)
	}
	if sz := unsafe.Sizeof(PaddedInt64{}); sz < 2*CacheLineSize+8 {
		t.Fatalf("PaddedInt64 size = %d, want >= %d", sz, 2*CacheLineSize+8)
	}
}

func TestPaddedUint64Concurrent(t *testing.T) {
	var c PaddedUint64
	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*perWorker {
		t.Fatalf("Load = %d, want %d", got, workers*perWorker)
	}
}

func TestPaddedInt64(t *testing.T) {
	var c PaddedInt64
	c.Store(-5)
	if got := c.Add(3); got != -2 {
		t.Fatalf("Add = %d, want -2", got)
	}
	if got := c.Load(); got != -2 {
		t.Fatalf("Load = %d, want -2", got)
	}
}

func TestBackoffWaitProgresses(t *testing.T) {
	// Wait must never block forever and must escalate through its phases.
	var b Backoff
	for i := 0; i < spinLimit*8+10; i++ {
		b.Wait()
	}
	if b.spins != spinLimit*8+10 {
		t.Fatalf("spins = %d, want %d", b.spins, spinLimit*8+10)
	}
	b.Reset()
	if b.spins != 0 {
		t.Fatalf("Reset did not clear spins: %d", b.spins)
	}
}

func TestSpinUntil(t *testing.T) {
	var c PaddedUint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		SpinUntil(func() bool { return c.Load() == 1 })
	}()
	time.Sleep(time.Millisecond)
	c.Store(1)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("SpinUntil did not return after condition became true")
	}
}

func TestSpinUntilTimeout(t *testing.T) {
	start := time.Now()
	ok := SpinUntilTimeout(func() bool { return false }, 10*time.Millisecond)
	if ok {
		t.Fatal("SpinUntilTimeout reported success for an impossible condition")
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("returned after %v, before the timeout", elapsed)
	}
	if !SpinUntilTimeout(func() bool { return true }, time.Second) {
		t.Fatal("SpinUntilTimeout failed for an immediate condition")
	}
}

func TestStripedCounterRoundsUp(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16},
	} {
		c := NewStripedCounter(tc.in)
		if got := len(c.stripes); got != tc.want {
			t.Errorf("NewStripedCounter(%d) stripes = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestStripedCounterSum(t *testing.T) {
	c := NewStripedCounter(4)
	for key := 0; key < 16; key++ {
		c.Add(key, uint64(key))
	}
	want := uint64(16 * 15 / 2)
	if got := c.Sum(); got != want {
		t.Fatalf("Sum = %d, want %d", got, want)
	}
	c.Reset()
	if got := c.Sum(); got != 0 {
		t.Fatalf("Sum after Reset = %d, want 0", got)
	}
}

func TestStripedCounterConcurrent(t *testing.T) {
	c := NewStripedCounter(8)
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(key int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc(key)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Sum(); got != workers*perWorker {
		t.Fatalf("Sum = %d, want %d", got, workers*perWorker)
	}
}

// Property: for any sequence of increments distributed over arbitrary keys,
// Sum equals the number of increments (stripes only shard, never lose).
func TestStripedCounterProperty(t *testing.T) {
	f := func(keys []uint8) bool {
		c := NewStripedCounter(4)
		for _, k := range keys {
			c.Inc(int(k))
		}
		return c.Sum() == uint64(len(keys))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpoDeterministicAndBounded(t *testing.T) {
	a := Expo{Base: time.Millisecond, Max: 16 * time.Millisecond, Seed: 7}
	b := Expo{Base: time.Millisecond, Max: 16 * time.Millisecond, Seed: 7}
	ceiling := time.Millisecond
	for i := 0; i < 32; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("step %d: same seed diverged: %v vs %v", i, da, db)
		}
		if da < ceiling/2 || da >= ceiling {
			t.Fatalf("step %d: %v outside [%v, %v)", i, da, ceiling/2, ceiling)
		}
		if ceiling < 16*time.Millisecond {
			ceiling *= 2
		}
	}
	// A different seed gives a different jitter stream.
	c := Expo{Base: time.Millisecond, Max: 16 * time.Millisecond, Seed: 8}
	same := true
	a = Expo{Base: time.Millisecond, Max: 16 * time.Millisecond, Seed: 7}
	for i := 0; i < 8; i++ {
		if a.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
}

func TestExpoZeroValue(t *testing.T) {
	var e Expo
	for i := 0; i < 20; i++ {
		d := e.Next()
		if d <= 0 || d > 100*time.Millisecond {
			t.Fatalf("zero-value Next = %v", d)
		}
	}
	e.Reset()
	if d := e.Next(); d >= time.Millisecond {
		t.Fatalf("after Reset, Next = %v, want < base", d)
	}
}
