package rcuarray_test

import (
	"sync"
	"testing"

	"rcuarray"
	"rcuarray/internal/check"
)

// pubTarget adapts the public Array API to the generator's target surface.
type pubTarget struct {
	a *rcuarray.Array[int64]
	t *rcuarray.Task
}

func (x pubTarget) Load(idx int) int64     { return x.a.Load(x.t, idx) }
func (x pubTarget) Store(idx int, v int64) { x.a.Store(x.t, idx, v) }
func (x pubTarget) GrowBlocks(n int)       { x.a.Grow(x.t, n*x.a.BlockSize()) }
func (x pubTarget) ShrinkBlocks(n int)     { x.a.Shrink(x.t, n*x.a.BlockSize()) }
func (x pubTarget) Len() int               { return x.a.Len(x.t) }
func (x pubTarget) Checkpoint()            { x.t.Checkpoint() }

// withPublicTasks parks n driver tasks on the cluster for fn's duration, so
// the check.Driver pumps can execute ops against stable task contexts.
func withPublicTasks(c *rcuarray.Cluster, n int, fn func(ts []*rcuarray.Task)) {
	ts := make([]*rcuarray.Task, n)
	release := make(chan struct{})
	var ready, done sync.WaitGroup
	ready.Add(n)
	done.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer done.Done()
			c.Run(func(tt *rcuarray.Task) {
				ts[i] = tt
				ready.Done()
				<-release
			})
		}(i)
	}
	ready.Wait()
	defer done.Wait()
	defer close(release)
	fn(ts)
}

func publicLiveBlocks(c *rcuarray.Cluster) int64 {
	var live int64
	inner := c.Internal()
	for i := 0; i < inner.NumLocales(); i++ {
		live += inner.Locale(i).MemStats().Live()
	}
	return live
}

// runPublicLincheck records seeded adversarial histories through the public
// API and checks each one, mirroring the internal/core suite one layer up.
func runPublicLincheck(t *testing.T, mode rcuarray.Reclaim) {
	c := rcuarray.NewCluster(rcuarray.ClusterConfig{Locales: 2, TasksPerLocale: 2})
	defer c.Shutdown()
	const ntasks = 3
	const bs = 8

	histories := 60
	if testing.Short() {
		histories = 10
	}
	base := uint64(9000 * (int(mode) + 1))
	for i := 0; i < histories; i++ {
		seed := base + uint64(i)
		withPublicTasks(c, ntasks, func(ts []*rcuarray.Task) {
			a := rcuarray.New[int64](ts[0], rcuarray.Options{BlockSize: bs, Reclaim: mode})
			d := check.NewDriver("rcuarray/"+mode.String(), seed, ntasks)
			targets := make([]check.ArrayTarget, ntasks)
			for k := range targets {
				targets[k] = pubTarget{a: a, t: ts[k]}
			}
			h := check.GenArrayHistory(d, targets, check.GenConfig{
				BlockSize: bs,
				Steps:     30,
				Shrink:    true,
			})
			d.Close()
			if rep := check.CheckArray(h, 0); !rep.Ok || rep.Inconclusive > 0 {
				t.Fatalf("public API lincheck failed, seed %d:\n%v\nhistory:\n%s",
					seed, rep, h.EncodeString())
			}
			a.Destroy(ts[0])
			for k := 0; k < 1000 && publicLiveBlocks(c) != 0; k++ {
				for _, tt := range ts {
					tt.Checkpoint()
				}
			}
			if live := publicLiveBlocks(c); live != 0 {
				t.Fatalf("seed %d: %d blocks leaked after Destroy+drain", seed, live)
			}
		})
	}
}

// TestLincheckPublicEBR and TestLincheckPublicQSBR run the linearizability
// suite against the exported rcuarray surface, so wrapper regressions (not
// just core ones) are caught.
func TestLincheckPublicEBR(t *testing.T)  { runPublicLincheck(t, rcuarray.EBR) }
func TestLincheckPublicQSBR(t *testing.T) { runPublicLincheck(t, rcuarray.QSBR) }
