// Package rcuarray is a Go reproduction of "RCUArray: An RCU-like
// Parallel-Safe Distributed Resizable Array" (Louis Jenkins, IPDPSW 2018):
// a block-distributed resizable array whose reads and updates run
// concurrently with resizes via Read-Copy-Update, over a simulated PGAS
// cluster.
//
// # Quick start
//
//	c := rcuarray.NewCluster(rcuarray.ClusterConfig{Locales: 4})
//	defer c.Shutdown()
//	c.Run(func(t *rcuarray.Task) {
//		a := rcuarray.New[int64](t, rcuarray.Options{
//			BlockSize:       1024,
//			Reclaim:         rcuarray.QSBR,
//			InitialCapacity: 4096,
//		})
//		a.Store(t, 17, 42)
//		a.Grow(t, 4096) // safe while other tasks read and update
//		_ = a.Load(t, 17)
//		t.Checkpoint() // QSBR quiescent point
//	})
//
// Two reclamation strategies are available, mirroring the paper:
//
//   - EBR (epoch-based): reads pay two atomic operations on collective
//     per-locale counters but need no cooperation from tasks.
//   - QSBR (quiescent-state-based): reads are free of synchronization, but
//     every task must call Task.Checkpoint between holding references, or
//     reclamation stalls. Worker threads park automatically when idle.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduced evaluation.
package rcuarray

import (
	"time"

	"rcuarray/internal/comm"
	"rcuarray/internal/core"
	"rcuarray/internal/locale"
)

// Task is an execution context bound to a locale — the explicit Go analogue
// of Chapel's implicit `here`/task pair. Tasks provide On/Coforall task
// parallelism and the QSBR Checkpoint operation.
type Task = locale.Task

// Locale is one simulated node of the cluster.
type Locale = locale.Locale

// ClusterConfig sizes a simulated cluster.
type ClusterConfig struct {
	// Locales is the number of simulated nodes. Default 1.
	Locales int
	// TasksPerLocale is each node's worker-pool size. Default 4.
	TasksPerLocale int
	// RemoteLatency, if nonzero, charges each remote PUT/GET/active
	// message this much one-way latency, modelling the interconnect.
	RemoteLatency time.Duration
}

// Cluster is a simulated multi-locale system hosting distributed arrays.
type Cluster struct {
	inner *locale.Cluster
}

// NewCluster starts a cluster. Call Shutdown when done.
func NewCluster(cfg ClusterConfig) *Cluster {
	return &Cluster{inner: locale.NewCluster(locale.Config{
		Locales:          cfg.Locales,
		WorkersPerLocale: cfg.TasksPerLocale,
		Comm:             comm.Config{RemoteLatency: cfg.RemoteLatency},
	})}
}

// Run executes fn as a driver task homed on locale 0 and blocks until it
// returns.
func (c *Cluster) Run(fn func(*Task)) { c.inner.Run(fn) }

// NumLocales returns the cluster size.
func (c *Cluster) NumLocales() int { return c.inner.NumLocales() }

// Shutdown stops the cluster's worker pools. Idempotent.
func (c *Cluster) Shutdown() { c.inner.Shutdown() }

// Internal returns the underlying cluster for advanced use (benchmark
// harnesses, communication statistics).
func (c *Cluster) Internal() *locale.Cluster { return c.inner }

// Reclaim selects the memory-reclamation strategy for an Array.
type Reclaim int

const (
	// EBR selects TLS-free epoch-based reclamation (paper Section III-A).
	EBR Reclaim = iota
	// QSBR selects runtime quiescent-state-based reclamation (Section
	// III-B); tasks must call Checkpoint periodically.
	QSBR
)

// String names the strategy.
func (r Reclaim) String() string {
	if r == QSBR {
		return "QSBR"
	}
	return "EBR"
}

// Options configures an Array.
type Options struct {
	// BlockSize is the element capacity of each distributed block.
	// Default 1024.
	BlockSize int
	// Reclaim picks EBR (default) or QSBR.
	Reclaim Reclaim
	// InitialCapacity, if positive, grows the array at construction.
	InitialCapacity int
	// PinBudget bounds how many operations a Reader session serves per
	// read-side pin before it voluntarily re-enters the critical section
	// (letting resizes complete). Zero selects the default (1024).
	PinBudget int
}

// Array is a parallel-safe distributed resizable array of T. All operations
// are safe to invoke from any number of tasks concurrently, including Grow
// and Shrink: the structure never corrupts and readers never observe
// reclaimed memory.
//
// Elements themselves are plain memory, exactly as in the paper's Chapel
// implementation: concurrent Store/Store or Store/Load on the *same index*
// are unsynchronized (last-writer-wins, and a data race by Go's memory
// model). Partition indices between tasks, or synchronize same-element
// access externally.
type Array[T any] struct {
	inner *core.Array[T]
}

// New creates an Array on the task's cluster.
func New[T any](t *Task, opts Options) *Array[T] {
	v := core.VariantEBR
	if opts.Reclaim == QSBR {
		v = core.VariantQSBR
	}
	return &Array[T]{inner: core.New[T](t, core.Options{
		BlockSize:       opts.BlockSize,
		Variant:         v,
		InitialCapacity: opts.InitialCapacity,
		PinBudget:       opts.PinBudget,
	})}
}

// Len returns the current capacity in elements, as seen from the calling
// locale.
func (a *Array[T]) Len(t *Task) int { return a.inner.Len(t) }

// BlockSize returns the block capacity in elements.
func (a *Array[T]) BlockSize() int { return a.inner.BlockSize() }

// Load reads element idx. Panics if idx is out of range.
func (a *Array[T]) Load(t *Task, idx int) T { return a.inner.Load(t, idx) }

// Store writes element idx. Panics if idx is out of range.
func (a *Array[T]) Store(t *Task, idx int, v T) { a.inner.Store(t, idx, v) }

// Index returns a reference to element idx. References remain valid across
// Grow (blocks are recycled, not moved); a Shrink that removes the element
// invalidates the reference.
func (a *Array[T]) Index(t *Task, idx int) Ref[T] {
	return Ref[T]{inner: a.inner.Index(t, idx)}
}

// CopyOut copies len(dst) elements starting at global index lo into dst,
// charging one bulk GET per remote block run. Safe concurrently with
// resizes.
func (a *Array[T]) CopyOut(t *Task, lo int, dst []T) { a.inner.CopyOut(t, lo, dst) }

// CopyIn stores src starting at global index lo, charging one bulk PUT per
// remote block run. Safe concurrently with resizes.
func (a *Array[T]) CopyIn(t *Task, lo int, src []T) { a.inner.CopyIn(t, lo, src) }

// Fill stores v into every element of [lo, hi).
func (a *Array[T]) Fill(t *Task, lo, hi int, v T) { a.inner.Fill(t, lo, hi, v) }

// LocalBlocks visits every block owned by the calling locale with its
// starting global index and raw element slice — the building block for
// Chapel-style forall iteration with fully local access (pair it with
// Task.Coforall).
func (a *Array[T]) LocalBlocks(t *Task, fn func(start int, data []T)) {
	a.inner.LocalBlocks(t, fn)
}

// Grow expands the array by at least additional elements, rounded up to
// whole blocks, concurrently with readers and updaters.
func (a *Array[T]) Grow(t *Task, additional int) { a.inner.Grow(t, additional) }

// Shrink removes at least removed elements from the array's tail, rounded
// up to whole blocks, concurrently with readers and updaters of the
// surviving region.
func (a *Array[T]) Shrink(t *Task, removed int) { a.inner.Shrink(t, removed) }

// Destroy releases all storage. The array must not be used afterwards.
func (a *Array[T]) Destroy(t *Task) { a.inner.Destroy(t) }

// Reader opens an amortized read session: one read-side critical-section
// entry serving many operations, with a location cache that makes
// sequential and strided index streams skip the block traversal. Close the
// session when done:
//
//	rd := a.Reader(t)
//	defer rd.Close()
//	for i := 0; i < rd.Len(); i++ { sum += rd.Load(i) }
//
// Under EBR the session holds its epoch pinned for at most PinBudget
// operations before transparently re-pinning; an idle open session delays
// concurrent resizes, so sessions should be closed promptly. Under QSBR the
// session must not span a Checkpoint (like a Ref). A Reader is per-task:
// not safe for concurrent use.
func (a *Array[T]) Reader(t *Task) Reader[T] {
	return Reader[T]{inner: a.inner.Reader(t)}
}

// Reader is an open read session on an Array. See Array.Reader.
type Reader[T any] struct {
	inner core.Reader[T]
}

// Load reads element idx through the session.
func (r *Reader[T]) Load(idx int) T { return r.inner.Load(idx) }

// Store writes element idx through the session.
func (r *Reader[T]) Store(idx int, v T) { r.inner.Store(idx, v) }

// Index returns a reference to element idx through the session.
func (r *Reader[T]) Index(idx int) Ref[T] { return Ref[T]{inner: r.inner.Index(idx)} }

// Len returns the capacity of the session's pinned snapshot (resizes become
// visible at the next repin).
func (r *Reader[T]) Len() int { return r.inner.Len() }

// Repin re-enters the critical section early, making concurrent resizes
// visible to the session.
func (r *Reader[T]) Repin() { r.inner.Repin() }

// Close ends the session. Idempotent.
func (r *Reader[T]) Close() { r.inner.Close() }

// CacheStats returns the session's location-cache hits and misses.
func (r *Reader[T]) CacheStats() (hits, misses uint64) { return r.inner.CacheStats() }

// Ref is a stable reference to one element, the paper's return-by-reference
// update mechanism: assignments through a Ref taken before a concurrent
// Grow remain visible afterwards (block recycling, paper Lemma 6).
type Ref[T any] struct {
	inner core.Ref[T]
}

// Load reads the referenced element.
func (r Ref[T]) Load(t *Task) T { return r.inner.Load(t) }

// Store writes the referenced element.
func (r Ref[T]) Store(t *Task, v T) { r.inner.Store(t, v) }

// Owner returns the id of the locale holding the element.
func (r Ref[T]) Owner() int { return r.inner.Owner() }
