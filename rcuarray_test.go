package rcuarray_test

import (
	"sync/atomic"
	"testing"

	"rcuarray"
)

func newCluster(t *testing.T, locales int) *rcuarray.Cluster {
	t.Helper()
	c := rcuarray.NewCluster(rcuarray.ClusterConfig{Locales: locales, TasksPerLocale: 2})
	t.Cleanup(c.Shutdown)
	return c
}

func TestPublicQuickstartFlow(t *testing.T) {
	c := newCluster(t, 4)
	if c.NumLocales() != 4 {
		t.Fatalf("NumLocales = %d", c.NumLocales())
	}
	c.Run(func(task *rcuarray.Task) {
		a := rcuarray.New[int64](task, rcuarray.Options{
			BlockSize:       64,
			Reclaim:         rcuarray.QSBR,
			InitialCapacity: 256,
		})
		a.Store(task, 17, 42)
		a.Grow(task, 256)
		if got := a.Load(task, 17); got != 42 {
			t.Fatalf("a[17] = %d", got)
		}
		if got := a.Len(task); got != 512 {
			t.Fatalf("Len = %d", got)
		}
		task.Checkpoint()
	})
}

func TestPublicReclaimNames(t *testing.T) {
	if rcuarray.EBR.String() != "EBR" || rcuarray.QSBR.String() != "QSBR" {
		t.Fatal("Reclaim names wrong")
	}
}

func TestPublicEBRArray(t *testing.T) {
	c := newCluster(t, 2)
	c.Run(func(task *rcuarray.Task) {
		a := rcuarray.New[string](task, rcuarray.Options{BlockSize: 4, InitialCapacity: 8})
		a.Store(task, 7, "hello")
		if got := a.Load(task, 7); got != "hello" {
			t.Fatalf("a[7] = %q", got)
		}
		if a.BlockSize() != 4 {
			t.Fatalf("BlockSize = %d", a.BlockSize())
		}
	})
}

func TestPublicRefSurvivesGrow(t *testing.T) {
	c := newCluster(t, 2)
	c.Run(func(task *rcuarray.Task) {
		a := rcuarray.New[int](task, rcuarray.Options{BlockSize: 4, InitialCapacity: 8})
		r := a.Index(task, 5)
		if r.Owner() != 1 {
			t.Fatalf("Owner = %d, want 1", r.Owner())
		}
		a.Grow(task, 8)
		r.Store(task, 9)
		if got := a.Load(task, 5); got != 9 {
			t.Fatalf("a[5] = %d", got)
		}
	})
}

func TestPublicShrinkDestroy(t *testing.T) {
	c := newCluster(t, 2)
	c.Run(func(task *rcuarray.Task) {
		a := rcuarray.New[int](task, rcuarray.Options{BlockSize: 4, InitialCapacity: 16})
		a.Shrink(task, 8)
		if got := a.Len(task); got != 8 {
			t.Fatalf("Len after Shrink = %d", got)
		}
		a.Destroy(task)
		if got := a.Len(task); got != 0 {
			t.Fatalf("Len after Destroy = %d", got)
		}
	})
}

func TestPublicConcurrentGrowAndUpdate(t *testing.T) {
	c := newCluster(t, 3)
	c.Run(func(task *rcuarray.Task) {
		a := rcuarray.New[int64](task, rcuarray.Options{
			BlockSize: 32, Reclaim: rcuarray.QSBR, InitialCapacity: 96,
		})
		var ops atomic.Int64
		task.Coforall(func(sub *rcuarray.Task) {
			sub.ForAllTasks(2, func(tt *rcuarray.Task, id int) {
				// Disjoint 16-element stripe per task: element access is
				// plain memory, so concurrent same-slot stores would be
				// data races by the array's semantics.
				base := (tt.Here().ID()*2 + id) * 16
				for i := 0; i < 200; i++ {
					if tt.Here().ID() == 0 && id == 0 && i%50 == 49 {
						a.Grow(tt, 32)
						continue
					}
					a.Store(tt, base+i%16, int64(i))
					ops.Add(1)
					if i%32 == 0 {
						tt.Checkpoint()
					}
				}
			})
		})
		if ops.Load() == 0 {
			t.Fatal("no operations completed")
		}
		if got := a.Len(task); got != 96+4*32 {
			t.Fatalf("final Len = %d", got)
		}
	})
}

func TestPublicInternalEscapeHatch(t *testing.T) {
	c := newCluster(t, 2)
	if c.Internal() == nil || c.Internal().NumLocales() != 2 {
		t.Fatal("Internal() did not expose the cluster")
	}
}

func TestPublicBulkOps(t *testing.T) {
	c := newCluster(t, 3)
	c.Run(func(task *rcuarray.Task) {
		a := rcuarray.New[int32](task, rcuarray.Options{BlockSize: 8, InitialCapacity: 48})
		src := []int32{9, 8, 7, 6, 5}
		a.CopyIn(task, 10, src)
		dst := make([]int32, 5)
		a.CopyOut(task, 10, dst)
		for i := range src {
			if dst[i] != src[i] {
				t.Fatalf("bulk round trip: dst[%d] = %d", i, dst[i])
			}
		}
		a.Fill(task, 0, 48, -1)
		if a.Load(task, 10) != -1 || a.Load(task, 47) != -1 {
			t.Fatal("Fill incomplete")
		}
		// Chapel forall: parallel, communication-free local iteration.
		var visited atomic.Int64
		task.Coforall(func(sub *rcuarray.Task) {
			a.LocalBlocks(sub, func(start int, data []int32) {
				visited.Add(int64(len(data)))
			})
		})
		if visited.Load() != 48 {
			t.Fatalf("LocalBlocks visited %d elements, want 48", visited.Load())
		}
	})
}

func TestPublicReaderSession(t *testing.T) {
	c := newCluster(t, 2)
	c.Run(func(task *rcuarray.Task) {
		a := rcuarray.New[int64](task, rcuarray.Options{
			BlockSize:       8,
			InitialCapacity: 64,
			PinBudget:       16,
		})
		rd := a.Reader(task)
		for i := 0; i < 64; i++ {
			rd.Store(i, int64(i)*2)
		}
		sum := int64(0)
		for i := 0; i < 64; i++ {
			sum += rd.Load(i)
		}
		if sum != 64*63 {
			t.Fatalf("session sum = %d, want %d", sum, 64*63)
		}
		if got := rd.Len(); got != 64 {
			t.Fatalf("session Len = %d, want 64", got)
		}
		hits, misses := rd.CacheStats()
		if hits == 0 || misses == 0 {
			t.Fatalf("cache stats = %d/%d, want both nonzero", hits, misses)
		}
		ref := rd.Index(9)
		if got := ref.Load(task); got != 18 {
			t.Fatalf("ref load = %d, want 18", got)
		}
		rd.Repin()
		rd.Close()
		rd.Close() // idempotent
		// Session released its pin: resizes proceed.
		a.Grow(task, 8)
		if got := a.Len(task); got != 72 {
			t.Fatalf("Len after close+grow = %d", got)
		}
		a.Destroy(task)
	})
}

func TestPublicReaderQSBR(t *testing.T) {
	c := newCluster(t, 1)
	c.Run(func(task *rcuarray.Task) {
		a := rcuarray.New[int64](task, rcuarray.Options{
			BlockSize:       8,
			Reclaim:         rcuarray.QSBR,
			InitialCapacity: 32,
		})
		a.Fill(task, 0, 32, 5)
		rd := a.Reader(task)
		sum := int64(0)
		for i := 0; i < 32; i++ {
			sum += rd.Load(i)
		}
		rd.Close()
		if sum != 160 {
			t.Fatalf("QSBR session sum = %d, want 160", sum)
		}
		task.Checkpoint() // sessions must not span this; closed above
	})
}
